// Ring arithmetic — the layer every SCQ-family ring (NCQ, CCQ, SCQ,
// wCQ, LSCQ segments) shares, factored out of the old scq_ring.hpp
// monolith so a new ring variant composes it instead of forking it.
//
// Two pieces:
//
//  - Geometry: the cycle/index packing of a ring of 2n entries backing
//    a queue of capacity n = 2^order. A position counter's quotient by
//    the ring size is its *cycle*; a 64-bit packed entry is
//    [ cycle | is_safe (1 bit) | index ], where index occupies
//    order+1 bits and all-ones means "empty" (BOT). Rings whose
//    entries are wider than one word (CCQ's CAS2 pairs) still use
//    Geometry for positions and keep cycle/safe in their own codec.
//
//  - Remap: the Cache_Remap position permutation as a pluggable
//    policy value — Remap::cache() spreads consecutive Head/Tail
//    positions across cache lines (and degrades to identity when the
//    ring fits a single line anyway), Remap::identity() is the
//    ablation/naive variant. Both directions (map/unmap) are exposed:
//    the wCQ slow path reconstructs positions from (cycle, slot).
#pragma once

#include <cstdint>

#include "wcq/detail.hpp"

namespace wcq::ring {

/// Cycle/index arithmetic for a ring of 2^(order+1) entries backing a
/// queue of 2^order indices. Pure value type: every ring variant owns
/// one and delegates its packing instead of inlining shift soup.
class Geometry {
 public:
  constexpr explicit Geometry(unsigned order)
      : order_(order),
        n_(std::uint64_t{1} << order),
        ring_size_(n_ * 2),
        idx_bits_(order + 1),
        idx_mask_((std::uint64_t{1} << (order + 1)) - 1) {}

  constexpr unsigned order() const { return order_; }
  constexpr std::uint64_t capacity() const { return n_; }
  constexpr std::uint64_t ring_size() const { return ring_size_; }
  constexpr unsigned idx_bits() const { return idx_bits_; }
  constexpr std::uint64_t idx_mask() const { return idx_mask_; }

  /// The "empty" index sentinel: all index bits set.
  constexpr std::uint64_t bot() const { return idx_mask_; }

  constexpr std::uint64_t pack(std::uint64_t cycle, bool safe,
                               std::uint64_t idx) const {
    return (cycle << (idx_bits_ + 1)) |
           (static_cast<std::uint64_t>(safe) << idx_bits_) | idx;
  }
  constexpr std::uint64_t cycle_of_pos(std::uint64_t pos) const {
    return pos >> (order_ + 1);
  }
  constexpr std::uint64_t cycle_of_entry(std::uint64_t e) const {
    return e >> (idx_bits_ + 1);
  }
  constexpr bool is_safe(std::uint64_t e) const {
    return ((e >> idx_bits_) & 1u) != 0;
  }
  constexpr std::uint64_t idx_of_entry(std::uint64_t e) const {
    return e & idx_mask_;
  }

  /// Position counter value for (cycle, ring slot) — the inverse of
  /// {cycle_of_pos, slot}; the slow path bumps Head/Tail with it.
  constexpr std::uint64_t pos_of(std::uint64_t cycle,
                                 std::uint64_t slot) const {
    return (cycle << (order_ + 1)) + slot;
  }

 private:
  unsigned order_;
  std::uint64_t n_;
  std::uint64_t ring_size_;
  unsigned idx_bits_;
  std::uint64_t idx_mask_;
};

/// Position permutation policy. Cache_Remap (the paper's §2 trick)
/// rotates position bits so consecutive positions land on distinct
/// cache lines; identity keeps the natural order. A runtime flag
/// rather than a template so one ring type serves both (the remap
/// ablation bench toggles it per options).
class Remap {
 public:
  /// Cache_Remap over `g`, for entries of which 2^line_bits fit one
  /// cache line. Degrades to identity when the whole ring occupies a
  /// single line's worth of slots per rotation (order+1 <= line_bits),
  /// where the permutation would be a no-op anyway.
  static constexpr Remap cache(const Geometry& g, unsigned line_bits) {
    return Remap(g, line_bits, g.order() + 1 > line_bits);
  }

  static constexpr Remap identity(const Geometry& g) {
    return Remap(g, 0, false);
  }

  constexpr bool enabled() const { return on_; }

  constexpr std::uint64_t map(std::uint64_t pos) const {
    const std::uint64_t masked = pos & (ring_size_ - 1);
    if (!on_) return masked;
    return ((masked >> (order2_ - line_bits_)) | (masked << line_bits_)) &
           (ring_size_ - 1);
  }

  /// Inverse permutation: ring slot back to position-mod-ring-size.
  constexpr std::uint64_t unmap(std::uint64_t j) const {
    if (!on_) return j;
    return ((j << (order2_ - line_bits_)) | (j >> line_bits_)) &
           (ring_size_ - 1);
  }

 private:
  constexpr Remap(const Geometry& g, unsigned line_bits, bool on)
      : ring_size_(g.ring_size()),
        order2_(g.order() + 1),  // log2(ring_size)
        line_bits_(line_bits),
        on_(on) {}

  std::uint64_t ring_size_;
  unsigned order2_;
  unsigned line_bits_;
  bool on_;
};

}  // namespace wcq::ring
