// Low-level shared bits: cache-line constants, cpu_pause, yield helper.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace wcq::detail {

// One line for data, two for the false-sharing guard most allocators
// and the Folly/Abseil crowd use on modern Intel (spatial prefetcher).
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kNoFalseSharing = 128;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Returns the number of index bits needed for `x` (x must be a power
// of two).
inline constexpr unsigned log2_pow2(std::uint64_t x) {
  unsigned r = 0;
  while ((std::uint64_t{1} << r) < x) ++r;
  return r;
}

}  // namespace wcq::detail
