// Low-level shared bits: cache-line constants, cpu_pause, CAS2 (the
// double-width compare-and-swap wCQ's note protocol rides on), and the
// packed note/request-control layouts of the cooperative slow path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace wcq::detail {

// One line for data, two for the false-sharing guard most allocators
// and the Folly/Abseil crowd use on modern Intel (spatial prefetcher).
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kNoFalseSharing = 128;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Returns the number of index bits needed for `x` (x must be a power
// of two).
inline constexpr unsigned log2_pow2(std::uint64_t x) {
  unsigned r = 0;
  while ((std::uint64_t{1} << r) < x) ++r;
  return r;
}

// ---- CAS2: double-width (128-bit) compare-and-swap ------------------
//
// The wCQ slow path publishes per-entry notes next to each ring word
// and needs {word, note} to change together (Figures 4-7). On x86-64
// that is one `lock cmpxchg16b`; everywhere else (and under TSan,
// which cannot see through inline asm) we fall back to the compiler's
// 128-bit __atomic builtins — the same "portable build" posture as the
// LL/SC-shaped ring consume of Section 4.

struct Pair {
  std::uint64_t word;  // ring entry: [cycle | is_safe | index]
  std::uint64_t note;  // 0, or a packed slow-path note (see below)
};

// Aliasing contract: the 16-byte CAS paths operate on storage that is
// concurrently accessed as two separate std::atomic<uint64_t> members
// (NotedEntry in scq_ring.hpp) through a reinterpret_cast to Pair.
// Mixing access widths on the same atomic object is outside the C++
// memory model, but it is the only way to pair cmpxchg16b with plain
// 64-bit loads/CASes and is well-defined at the ISA level on every
// target we build for (all lock-prefixed ops on the same line). The
// asserts pin the layout assumptions the cast relies on: an atomic
// u64 is exactly its value representation and lock-free, so Pair and
// {atomic<u64>, atomic<u64>} are layout-interchangeable.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "wcq requires lock-free 64-bit atomics");
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t),
              "wcq relies on std::atomic<u64> having no extra state");
static_assert(sizeof(Pair) == 2 * sizeof(std::uint64_t) &&
                  alignof(Pair) <= 16,
              "Pair must be two packed 64-bit words");

#if defined(__SANITIZE_THREAD__)
#define WCQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WCQ_TSAN 1
#endif
#endif
#ifndef WCQ_TSAN
#define WCQ_TSAN 0
#endif

#if defined(__x86_64__) && !WCQ_TSAN
#define WCQ_CAS2_NATIVE 1
#else
#define WCQ_CAS2_NATIVE 0
#endif

// Portable CAS2: __atomic builtins on a 16-byte object. With -mcx16
// (set by the build for x86-64) this stays lock-free; under TSan it is
// also the instrumented path the race detector can reason about. This
// is the Section 4 "portable build" shape, and what WcqPortableQueue
// runs unconditionally.
inline bool cas2_portable(Pair* addr, Pair* expected, Pair desired) {
  return __atomic_compare_exchange(addr, expected, &desired,
                                   /*weak=*/false, __ATOMIC_SEQ_CST,
                                   __ATOMIC_SEQ_CST);
}

// Atomically: if *addr == *expected, store desired and return true;
// else copy the current value into *expected and return false. `addr`
// must be 16-byte aligned. Full barrier on success and failure.
inline bool cas2(Pair* addr, Pair* expected, Pair desired) {
#if WCQ_CAS2_NATIVE
  bool ok;
  asm volatile("lock cmpxchg16b %1"
               : "=@ccz"(ok), "+m"(*addr), "+a"(expected->word),
                 "+d"(expected->note)
               : "b"(desired.word), "c"(desired.note)
               : "memory");
  return ok;
#else
  return cas2_portable(addr, expected, desired);
#endif
}

// ---- note layout -----------------------------------------------------
//
// A note is a nonzero 64-bit word parked in the second half of a ring
// entry, attributing in-flight slow-path work to one request:
//
//   [ marker:1 | phase:1 | kind:1 | slot:9 | seq:31 | aux:21 ]
//
// marker    always 1 so a live note is never mistaken for "no note".
// phase     A (0) = revocable claim, the entry word is frozen but
//           unchanged; B (1) = the commit happened in the same CAS2
//           that wrote this note.
// kind      0 enqueue, 1 dequeue (matches the request's ctl kind).
// slot      owning ThreadRec slot (max_threads <= 512).
// seq       low bits of the request sequence number, to tie the note
//           to one incarnation of the record.
// aux       enqueue claim: low bits of the target cycle; dequeue
//           claim/commit: the consumed ring index (result transport).

inline constexpr unsigned kNoteAuxBits = 21;
inline constexpr unsigned kNoteSeqBits = 31;
inline constexpr unsigned kNoteSlotBits = 9;
inline constexpr std::uint64_t kNoteAuxMask =
    (std::uint64_t{1} << kNoteAuxBits) - 1;
inline constexpr std::uint64_t kNoteSeqMask =
    (std::uint64_t{1} << kNoteSeqBits) - 1;
inline constexpr std::uint64_t kNoteSlotMask =
    (std::uint64_t{1} << kNoteSlotBits) - 1;
inline constexpr unsigned kMaxNoteThreads = 1u << kNoteSlotBits;
inline constexpr unsigned kMaxNoteOrder = kNoteAuxBits - 1;  // idx bits fit

inline constexpr std::uint64_t pack_note(bool phase_b, bool deq,
                                         std::uint64_t slot,
                                         std::uint64_t seq,
                                         std::uint64_t aux) {
  return (std::uint64_t{1} << 63) |
         (static_cast<std::uint64_t>(phase_b) << 62) |
         (static_cast<std::uint64_t>(deq) << 61) |
         ((slot & kNoteSlotMask) << (kNoteSeqBits + kNoteAuxBits)) |
         ((seq & kNoteSeqMask) << kNoteAuxBits) | (aux & kNoteAuxMask);
}
inline constexpr bool note_phase_b(std::uint64_t n) {
  return ((n >> 62) & 1u) != 0;
}
inline constexpr bool note_deq(std::uint64_t n) {
  return ((n >> 61) & 1u) != 0;
}
inline constexpr std::uint64_t note_slot(std::uint64_t n) {
  return (n >> (kNoteSeqBits + kNoteAuxBits)) & kNoteSlotMask;
}
inline constexpr std::uint64_t note_seq(std::uint64_t n) {
  return (n >> kNoteAuxBits) & kNoteSeqMask;
}
inline constexpr std::uint64_t note_aux(std::uint64_t n) {
  return n & kNoteAuxMask;
}

// ---- result word -----------------------------------------------------
//
// A dequeue's result travels through the request's 64-bit result word
// as [ seq:42 | value:22 ]. The owner publishes {seq, kResultNone};
// finalizers CAS {seq, kResultNone} -> {seq, index}, so a stale
// finalizer of an earlier incarnation can never clobber a successor
// operation's result (its expected seq no longer matches), and exactly
// one delivery per incarnation succeeds. Ring indices are at most 21
// bits (kMaxNoteOrder), so they never collide with the sentinel.

inline constexpr unsigned kResultValBits = 22;
inline constexpr std::uint64_t kResultValMask =
    (std::uint64_t{1} << kResultValBits) - 1;
inline constexpr std::uint64_t kResultNone = kResultValMask;

inline constexpr std::uint64_t pack_result(std::uint64_t seq,
                                           std::uint64_t val) {
  return (seq << kResultValBits) | (val & kResultValMask);
}
inline constexpr std::uint64_t result_val(std::uint64_t r) {
  return r & kResultValMask;
}

// ---- request control word -------------------------------------------
//
// Every thread record owns one RingRequest whose 64-bit ctl word is
// the request's whole lifecycle, advanced by CAS from any thread:
//
//   [ seq:37 | j:22 | ring:1 | kind:1 | state:3 ]
//
// state     Idle -> Pending -> Phase2 -> DoneOk | DoneEmpty.
//           Phase2 and DoneOk carry j, the ring slot the operation
//           committed (or will commit) at; exactly one Pending->Phase2
//           transition ever succeeds per seq, which is what makes the
//           commit single despite any number of concurrent helpers.
// ring      which of the queue's two rings (0 = aq, 1 = fq).
// kind      0 enqueue-index, 1 dequeue-index.
// seq       monotone per record; a note referencing an old seq is
//           stale by definition and safely revocable.

inline constexpr std::uint64_t kReqIdle = 0;
inline constexpr std::uint64_t kReqPending = 1;
inline constexpr std::uint64_t kReqPhase2 = 2;
inline constexpr std::uint64_t kReqDoneOk = 3;
inline constexpr std::uint64_t kReqDoneEmpty = 4;

inline constexpr unsigned kCtlStateBits = 3;
inline constexpr unsigned kCtlJBits = 22;
inline constexpr std::uint64_t kCtlStateMask =
    (std::uint64_t{1} << kCtlStateBits) - 1;
inline constexpr std::uint64_t kCtlJMask = (std::uint64_t{1} << kCtlJBits) - 1;

inline constexpr std::uint64_t pack_ctl(std::uint64_t seq, std::uint64_t j,
                                        bool fq_ring, bool deq,
                                        std::uint64_t state) {
  return (seq << (kCtlJBits + 2 + kCtlStateBits)) |
         ((j & kCtlJMask) << (2 + kCtlStateBits)) |
         (static_cast<std::uint64_t>(fq_ring) << (1 + kCtlStateBits)) |
         (static_cast<std::uint64_t>(deq) << kCtlStateBits) |
         (state & kCtlStateMask);
}
inline constexpr std::uint64_t ctl_state(std::uint64_t c) {
  return c & kCtlStateMask;
}
inline constexpr bool ctl_deq(std::uint64_t c) {
  return ((c >> kCtlStateBits) & 1u) != 0;
}
inline constexpr bool ctl_fq(std::uint64_t c) {
  return ((c >> (1 + kCtlStateBits)) & 1u) != 0;
}
inline constexpr std::uint64_t ctl_j(std::uint64_t c) {
  return (c >> (2 + kCtlStateBits)) & kCtlJMask;
}
inline constexpr std::uint64_t ctl_seq(std::uint64_t c) {
  return c >> (kCtlJBits + 2 + kCtlStateBits);
}
// Same seq/ring/kind, new j + state.
inline constexpr std::uint64_t ctl_with(std::uint64_t c, std::uint64_t j,
                                        std::uint64_t state) {
  return pack_ctl(ctl_seq(c), j, ctl_fq(c), ctl_deq(c), state);
}
// Does note `n` reference the request incarnation `c` is showing?
inline constexpr bool note_matches_ctl(std::uint64_t n, std::uint64_t c) {
  return note_seq(n) == (ctl_seq(c) & kNoteSeqMask) &&
         note_deq(n) == ctl_deq(c) && ctl_state(c) != kReqIdle;
}

}  // namespace wcq::detail
