// FAA baseline: the unbounded fetch-and-add array queue (the "FAA"
// series of the paper's figures and the skeleton under LCRQ/YMC-style
// designs). Enqueue FAAs a tail counter and CASes its slot from EMPTY
// to the value; dequeue FAAs head and XCHGs the slot with TAKEN.
// Storage is a linked list of fixed-size segments allocated through
// the counting allocator and only reclaimed at destruction — the
// unbounded memory footprint is exactly what Figure 10 contrasts
// against wCQ/SCQ's static rings.
//
// Values ~0 and ~0-1 are reserved as sentinels.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"

namespace wcq {

class FaaQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned seg_order = 10;  // 1024 slots per segment
  };

  using Handle = TrivialHandle;

  static constexpr std::uint64_t kEmptyCell = ~std::uint64_t{0};
  static constexpr std::uint64_t kTakenCell = ~std::uint64_t{0} - 1;

  explicit FaaQueue(const Config& cfg)
      : seg_order_(cfg.seg_order),
        seg_slots_(std::uint64_t{1} << cfg.seg_order) {
    first_ = new_segment(0);
    head_seg_.store(first_, std::memory_order_relaxed);
    tail_seg_.store(first_, std::memory_order_relaxed);
  }

  explicit FaaQueue(const options& opt) : FaaQueue(Config{opt.seg_order()}) {}

  ~FaaQueue() {
    Segment* s = first_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      free_segment(s);
      s = next;
    }
  }

  FaaQueue(const FaaQueue&) = delete;
  FaaQueue& operator=(const FaaQueue&) = delete;

  Handle get_handle() { return Handle{}; }
  std::optional<Handle> try_get_handle() { return Handle{}; }

  // Succeeds for every storable value (unbounded). The top two slot
  // patterns are the EMPTY/TAKEN sentinels of the FAA protocol and
  // cannot be stored: they are refused here (false) rather than
  // silently lost — a CAS of kEmptyCell over kEmptyCell "succeeds"
  // while leaving the cell empty. Typed callers that need the full
  // 64-bit value space over this backend must use a boxed
  // slot_codec (pointers never collide with the sentinels).
  bool try_push(std::uint64_t v, Handle&) {
    if (v >= kTakenCell) return false;
    return push_impl(v);
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle&) { return pop_impl(v); }

 private:
  bool push_impl(std::uint64_t v) {
    assert(v < kTakenCell && "sentinel values cannot be enqueued");
    for (;;) {
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      Segment* s = find_segment(&tail_seg_, t >> seg_order_);
      std::uint64_t expected = kEmptyCell;
      if (s->slots()[t & (seg_slots_ - 1)].compare_exchange_strong(
              expected, v, std::memory_order_release,
              std::memory_order_relaxed)) {
        return true;
      }
      // Slot was poisoned by a too-fast dequeuer; take a new ticket.
    }
  }

  bool pop_impl(std::uint64_t* v) {
    for (;;) {
      if (head_.load(std::memory_order_seq_cst) >=
          tail_.load(std::memory_order_seq_cst)) {
        return false;
      }
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      Segment* s = find_segment(&head_seg_, h >> seg_order_);
      const std::uint64_t old = s->slots()[h & (seg_slots_ - 1)].exchange(
          kTakenCell, std::memory_order_acq_rel);
      if (old != kEmptyCell) {
        *v = old;
        return true;
      }
    }
  }

  struct alignas(detail::kCacheLine) Segment {
    std::uint64_t id = 0;
    Segment* prev = nullptr;  // immutable after publication
    std::atomic<Segment*> next{nullptr};
    // seg_slots_ atomic slots live in trailing storage (see slots()).
    std::atomic<std::uint64_t>* slots() {
      return reinterpret_cast<std::atomic<std::uint64_t>*>(this + 1);
    }
  };

  std::size_t segment_bytes() const {
    return sizeof(Segment) + seg_slots_ * sizeof(std::atomic<std::uint64_t>);
  }

  Segment* new_segment(std::uint64_t id) {
    void* raw = mem::alloc(segment_bytes());
    Segment* s = new (raw) Segment();
    s->id = id;
    std::atomic<std::uint64_t>* slots = s->slots();
    for (std::uint64_t i = 0; i < seg_slots_; ++i) {
      new (&slots[i]) std::atomic<std::uint64_t>(kEmptyCell);
    }
    return s;
  }

  void free_segment(Segment* s) {
    s->~Segment();
    mem::free(s, segment_bytes());
  }

  Segment* find_segment(std::atomic<Segment*>* hint, std::uint64_t id) {
    Segment* s = hint->load(std::memory_order_acquire);
    // The shared hint can have advanced past a slow thread's target;
    // walk back over the doubly-linked (never reclaimed) segments.
    while (s->id > id) s = s->prev;
    while (s->id < id) {
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        Segment* fresh = new_segment(s->id + 1);
        fresh->prev = s;
        Segment* expected = nullptr;
        if (s->next.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
          next = fresh;
        } else {
          free_segment(fresh);  // lost the race; nobody saw ours
          next = expected;
        }
      }
      s = next;
    }
    // Advance the hint monotonically so later ops skip the walk. Both
    // the load and the CAS failure path hand back a pointer we then
    // dereference (cur->id), so they must acquire the segment's init.
    Segment* cur = hint->load(std::memory_order_acquire);
    while (cur->id < s->id &&
           !hint->compare_exchange_weak(cur, s, std::memory_order_release,
                                        std::memory_order_acquire)) {
    }
    return s;
  }

  const unsigned seg_order_;
  const std::uint64_t seg_slots_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> head_seg_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> tail_seg_{nullptr};
  Segment* first_ = nullptr;  // list anchor, freed in the destructor
};

}  // namespace wcq
