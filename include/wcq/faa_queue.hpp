// FAA baseline: the unbounded fetch-and-add array queue (the "FAA"
// series of the paper's figures and the skeleton under LCRQ/YMC-style
// designs). Enqueue FAAs a tail counter and CASes its slot from EMPTY
// to the value; dequeue FAAs head and XCHGs the slot with TAKEN.
// Storage is a linked list of fixed-size segments allocated through
// the counting allocator; drained segments are retired through the
// shared SMR layer (wcq/smr.hpp) under epoch pinning — every
// operation is one pinned region, so the many transient segment
// pointers a hint walk touches stay valid without per-hop hazards.
// The queue is still unbounded at any instant the producers outrun
// the consumers (that is the Figure 10 contrast with wCQ/SCQ's static
// rings), but consumed segments no longer pile up until destruction.
//
// Values ~0 and ~0-1 are reserved as sentinels.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/smr.hpp"

namespace wcq {

class FaaQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned seg_order = 10;  // 1024 slots per segment
    unsigned max_threads = 128;
    unsigned retire_threshold = 0;  // 0 = auto (see wcq/smr.hpp)
  };

  using Handle = RegistryHandle<FaaQueue>;

  static constexpr std::uint64_t kEmptyCell = ~std::uint64_t{0};
  static constexpr std::uint64_t kTakenCell = ~std::uint64_t{0} - 1;

  explicit FaaQueue(const Config& cfg)
      : seg_order_(cfg.seg_order),
        seg_slots_(std::uint64_t{1} << cfg.seg_order),
        slots_(cfg.max_threads ? cfg.max_threads : 1),
        smr_(slots_.capacity(), cfg.retire_threshold) {
    Segment* first = new_segment(0);
    first_.store(first, std::memory_order_relaxed);
    head_seg_.store(first, std::memory_order_relaxed);
    tail_seg_.store(first, std::memory_order_relaxed);
  }

  explicit FaaQueue(const options& opt)
      : FaaQueue(Config{opt.seg_order(), opt.max_threads(),
                        opt.retire_threshold()}) {}

  ~FaaQueue() {
    assert(slots_.live() == 0 &&
           "faa: a Handle is outliving its queue (use-after-free ahead)");
    // Live segments hang off first_; retired ones are freed by the
    // domain's destructor.
    Segment* s = first_.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      free_segment(this, s);
      s = next;
    }
  }

  FaaQueue(const FaaQueue&) = delete;
  FaaQueue& operator=(const FaaQueue&) = delete;

  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, slot);
  }

  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "faa: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // Succeeds for every storable value (unbounded). The top two slot
  // patterns are the EMPTY/TAKEN sentinels of the FAA protocol and
  // cannot be stored: they are refused here (false) rather than
  // silently lost — a CAS of kEmptyCell over kEmptyCell "succeeds"
  // while leaving the cell empty. Typed callers that need the full
  // 64-bit value space over this backend must use a boxed
  // slot_codec (pointers never collide with the sentinels).
  bool try_push(std::uint64_t v, Handle& h) {
    if (v >= kTakenCell) return false;
    smr::Domain::Pin pin(smr_, h.slot());
    return push_impl(v);
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) {
    smr::Domain::Pin pin(smr_, h.slot());
    return pop_impl(v, h.slot());
  }

  // Batch enqueue: claims tickets for a whole run of values with ONE
  // tail FAA and deposits them on consecutive cells, hoisting the
  // segment lookup out of the per-value loop. Returns the number of
  // values accepted: the longest sentinel-free prefix of vs (a
  // sentinel stops the batch exactly where try_push would refuse it).
  // Per-pusher FIFO is preserved: when a racing dequeuer poisons a
  // cell mid-burst, the *remaining* values — not just the collided
  // one — are re-ticketed together, so their relative order survives.
  std::size_t try_push_n(const std::uint64_t* vs, std::size_t n, Handle& h) {
    std::size_t k = 0;
    while (k < n && vs[k] < kTakenCell) ++k;
    if (k == 0) return 0;
    smr::Domain::Pin pin(smr_, h.slot());
    const std::uint64_t* p = vs;
    std::size_t rem = k;
    while (rem > 0) {
      const std::uint64_t t0 =
          tail_.fetch_add(rem, std::memory_order_seq_cst);
      Segment* s = nullptr;
      std::size_t done = 0;
      for (; done < rem; ++done) {
        const std::uint64_t t = t0 + done;
        if (s == nullptr || s->id != (t >> seg_order_)) {
          s = find_segment(&tail_seg_, t >> seg_order_);
        }
        std::uint64_t expected = kEmptyCell;
        if (!s->slots()[t & (seg_slots_ - 1)].compare_exchange_strong(
                expected, p[done], std::memory_order_release,
                std::memory_order_relaxed)) {
          // A too-fast dequeuer consumed this ticket. Abandon the rest
          // of the burst's tickets (their cells stay EMPTY; dequeuers
          // skip them) and re-burst the undeposited suffix in order.
          break;
        }
      }
      // done counts deposits only; a collided value leads the next
      // burst, keeping the suffix in order.
      p += done;
      rem -= done;
    }
    return k;
  }

  // Batch dequeue: claims up to n head tickets with ONE FAA (bounded
  // by the observed tail so an empty queue costs no tickets) and
  // collects the deposited cells in ticket order. Returns how many
  // values landed in out — possibly fewer than claimed when racing
  // enqueuers had not yet deposited (their values are re-ticketed by
  // their own retry loop; nothing is lost), zero iff empty.
  std::size_t try_pop_n(std::uint64_t* out, std::size_t n, Handle& h) {
    if (n == 0) return 0;
    smr::Domain::Pin pin(smr_, h.slot());
    std::size_t got = 0;
    while (got == 0) {
      const std::uint64_t head = head_.load(std::memory_order_seq_cst);
      const std::uint64_t tail = tail_.load(std::memory_order_seq_cst);
      if (head >= tail) return 0;
      std::uint64_t k = tail - head;
      if (k > n) k = n;
      const std::uint64_t h0 =
          head_.fetch_add(k, std::memory_order_seq_cst);
      Segment* s = nullptr;
      for (std::uint64_t i = 0; i < k; ++i) {
        const std::uint64_t t = h0 + i;
        if (s == nullptr || s->id != (t >> seg_order_)) {
          s = find_segment(&head_seg_, t >> seg_order_);
        }
        const std::uint64_t old = s->slots()[t & (seg_slots_ - 1)].exchange(
            kTakenCell, std::memory_order_acq_rel);
        if ((t & (seg_slots_ - 1)) == 0) reclaim_segments(h.slot());
        if (old != kEmptyCell) out[got++] = old;
      }
    }
    return got;
  }

  smr::Stats smr_stats() const { return smr_.stats(); }

 private:
  friend class RegistryHandle<FaaQueue>;

  void release_slot(unsigned slot) {
    smr_.quiesce(slot);
    slots_.release(slot);
  }

  bool push_impl(std::uint64_t v) {
    assert(v < kTakenCell && "sentinel values cannot be enqueued");
    for (;;) {
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      Segment* s = find_segment(&tail_seg_, t >> seg_order_);
      std::uint64_t expected = kEmptyCell;
      if (s->slots()[t & (seg_slots_ - 1)].compare_exchange_strong(
              expected, v, std::memory_order_release,
              std::memory_order_relaxed)) {
        return true;
      }
      // Slot was poisoned by a too-fast dequeuer; take a new ticket.
    }
  }

  bool pop_impl(std::uint64_t* v, unsigned slot) {
    for (;;) {
      if (head_.load(std::memory_order_seq_cst) >=
          tail_.load(std::memory_order_seq_cst)) {
        return false;
      }
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      Segment* s = find_segment(&head_seg_, h >> seg_order_);
      const std::uint64_t old = s->slots()[h & (seg_slots_ - 1)].exchange(
          kTakenCell, std::memory_order_acq_rel);
      // First ticket of a segment: a previous segment just became
      // fully issued — amortized point to retire drained segments.
      if ((h & (seg_slots_ - 1)) == 0) reclaim_segments(slot);
      if (old != kEmptyCell) {
        *v = old;
        return true;
      }
    }
  }

  struct alignas(detail::kCacheLine) Segment {
    std::uint64_t id = 0;
    Segment* prev = nullptr;  // immutable after publication
    std::atomic<Segment*> next{nullptr};
    // seg_slots_ atomic slots live in trailing storage (see slots()).
    std::atomic<std::uint64_t>* slots() {
      return reinterpret_cast<std::atomic<std::uint64_t>*>(this + 1);
    }
  };

  std::size_t segment_bytes() const {
    return sizeof(Segment) + seg_slots_ * sizeof(std::atomic<std::uint64_t>);
  }

  Segment* new_segment(std::uint64_t id) {
    void* raw = mem::alloc(segment_bytes());
    Segment* s = new (raw) Segment();
    s->id = id;
    std::atomic<std::uint64_t>* slots = s->slots();
    for (std::uint64_t i = 0; i < seg_slots_; ++i) {
      new (&slots[i]) std::atomic<std::uint64_t>(kEmptyCell);
    }
    return s;
  }

  static void free_segment(FaaQueue* q, Segment* s) {
    s->~Segment();
    mem::free(s, q->segment_bytes());
  }

  static void free_segment_erased(void* p, void* ctx) {
    free_segment(static_cast<FaaQueue*>(ctx), static_cast<Segment*>(p));
  }

  // Unlink and retire every segment no new operation can reach. A
  // segment `s` is unreachable for threads that pin after this point
  // once (a) both tickets streams have left it — no future ticket
  // maps into s — and (b) both hints have advanced past it: the
  // forward walk starts at a hint (id > s->id, never descends) and
  // the backward walk only visits ids >= its target, which is a
  // future ticket's segment, also > s->id. Threads pinned *before*
  // the retirement may still be walking across s; the domain defers
  // the free until they unpin (their epochs predate the retire
  // stamp), which is exactly the epoch idiom's job. Unlinking from
  // first_ is what keeps the destructor walk and this loop off
  // retired segments; prev/next pointers inside them stay intact for
  // the laggards.
  void reclaim_segments(unsigned slot) {
    const std::uint64_t head_id =
        head_.load(std::memory_order_acquire) >> seg_order_;
    const std::uint64_t tail_id =
        tail_.load(std::memory_order_acquire) >> seg_order_;
    const std::uint64_t head_hint_id =
        head_seg_.load(std::memory_order_acquire)->id;
    const std::uint64_t tail_hint_id =
        tail_seg_.load(std::memory_order_acquire)->id;
    std::uint64_t keep = head_id < tail_id ? head_id : tail_id;
    if (head_hint_id < keep) keep = head_hint_id;
    if (tail_hint_id < keep) keep = tail_hint_id;
    for (;;) {
      Segment* s = first_.load(std::memory_order_acquire);
      if (s->id >= keep) return;
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) return;  // successor not linked yet
      if (first_.compare_exchange_strong(s, next, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        smr_.retire(slot, s, &free_segment_erased, this);
      }
    }
  }

  Segment* find_segment(std::atomic<Segment*>* hint, std::uint64_t id) {
    Segment* s = hint->load(std::memory_order_acquire);
    // The shared hint can have advanced past a slow thread's target;
    // walk back over the doubly-linked segments. Segments on this
    // path may be retired but cannot be freed while we are pinned.
    while (s->id > id) s = s->prev;
    while (s->id < id) {
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        Segment* fresh = new_segment(s->id + 1);
        fresh->prev = s;
        Segment* expected = nullptr;
        if (s->next.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
          next = fresh;
        } else {
          free_segment(this, fresh);  // lost the race; nobody saw ours
          next = expected;
        }
      }
      s = next;
    }
    // Advance the hint monotonically so later ops skip the walk. Both
    // the load and the CAS failure path hand back a pointer we then
    // dereference (cur->id), so they must acquire the segment's init.
    Segment* cur = hint->load(std::memory_order_acquire);
    while (cur->id < s->id &&
           !hint->compare_exchange_weak(cur, s, std::memory_order_release,
                                        std::memory_order_acquire)) {
    }
    return s;
  }

  const unsigned seg_order_;
  const std::uint64_t seg_slots_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> head_seg_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> tail_seg_{nullptr};
  // Oldest still-linked segment: the reclaim loop's unlink anchor and
  // the destructor's walk root.
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> first_{nullptr};
  SlotRegistry slots_;
  smr::Domain smr_;
};

}  // namespace wcq
