// Counting allocator every queue routes its dynamic allocations
// through, so the Figure 10 memory bench can report peak live bytes
// actually requested by the algorithm (not the allocator's slack).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "wcq/detail.hpp"

namespace wcq::mem {

struct Stats {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t total_bytes = 0;
};

namespace detail {
inline std::atomic<std::uint64_t> live{0};
inline std::atomic<std::uint64_t> peak{0};
inline std::atomic<std::uint64_t> allocs{0};
inline std::atomic<std::uint64_t> total{0};

inline void on_alloc(std::size_t bytes) {
  allocs.fetch_add(1, std::memory_order_relaxed);
  total.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t now =
      live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t p = peak.load(std::memory_order_relaxed);
  while (p < now &&
         !peak.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Aligned, counted allocation. Pair with mem::free (sized).
inline void* alloc(std::size_t bytes,
                   std::size_t align = wcq::detail::kNoFalseSharing) {
  detail::on_alloc(bytes);
  return ::operator new(bytes, std::align_val_t{align});
}

inline void free(void* p, std::size_t bytes,
                 std::size_t align = wcq::detail::kNoFalseSharing) {
  if (p == nullptr) return;
  detail::live.fetch_sub(bytes, std::memory_order_relaxed);
  ::operator delete(p, bytes, std::align_val_t{align});
}

// Zero all counters (call between benchmark runs, with no queues live).
inline void reset() {
  detail::live.store(0, std::memory_order_relaxed);
  detail::peak.store(0, std::memory_order_relaxed);
  detail::allocs.store(0, std::memory_order_relaxed);
  detail::total.store(0, std::memory_order_relaxed);
}

inline Stats stats() {
  Stats s;
  s.live_bytes = detail::live.load(std::memory_order_relaxed);
  s.peak_bytes = detail::peak.load(std::memory_order_relaxed);
  s.total_allocs = detail::allocs.load(std::memory_order_relaxed);
  s.total_bytes = detail::total.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wcq::mem
