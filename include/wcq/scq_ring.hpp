// The SCQ ring (Nikolaev, DISC 2019) that wCQ extends: a lock-free
// bounded FIFO of small indices. A ring of 2n 64-bit entries backs a
// queue of capacity n; Head/Tail are FAA'd position counters whose
// quotient by the ring size is the entry's expected "cycle". The
// `threshold` counter gives dequeuers a constant-time empty exit, and
// Cache_Remap spreads consecutive positions across cache lines.
//
// Entry layout (64 bits):   [ cycle | is_safe (1 bit) | index ]
// where index occupies order+1 bits and all-ones means "empty" (BOT).
#pragma once

#include <atomic>
#include <cstdint>

#include "wcq/detail.hpp"
#include "wcq/mem.hpp"

namespace wcq {

class ScqRing {
 public:
  enum Result : int {
    kOk = 0,
    kEmpty = 1,      // definitive: queue observed empty (threshold spent)
    kContended = 2,  // patience exhausted; retry or go to a slow path
  };

  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  // Capacity is 2^order indices; the ring itself has 2^(order+1)
  // entries. `remap` toggles Cache_Remap; `portable_consume` replaces
  // the fetch_or consume with a CAS loop, mimicking the LL/SC-friendly
  // portable build of the paper's Section 4.
  ScqRing(unsigned order, bool remap, bool portable_consume)
      : order_(order),
        n_(std::uint64_t{1} << order),
        ring_size_(n_ * 2),
        idx_bits_(order + 1),
        idx_mask_((std::uint64_t{1} << (order + 1)) - 1),
        threshold_init_(static_cast<std::int64_t>(ring_size_ + n_ - 1)),
        remap_(remap && order + 1 > kLineBits),
        portable_consume_(portable_consume) {
    entries_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(ring_size_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t j = 0; j < ring_size_; ++j) {
      entries_[j].store(pack(0, true, kBot()), std::memory_order_relaxed);
    }
    // Start positions at ring_size so live cycles begin at 1 and are
    // always distinguishable from the zero-initialised entries.
    head_.store(ring_size_, std::memory_order_relaxed);
    tail_.store(ring_size_, std::memory_order_relaxed);
    threshold_.store(-1, std::memory_order_relaxed);
  }

  ~ScqRing() {
    mem::free(entries_, ring_size_ * sizeof(std::atomic<std::uint64_t>));
  }

  ScqRing(const ScqRing&) = delete;
  ScqRing& operator=(const ScqRing&) = delete;

  std::uint64_t capacity() const { return n_; }

  // Enqueue an index in [0, capacity). As long as at most `capacity`
  // indices are live the ring always has room, so the only non-kOk
  // outcome is kContended when `max_iters` attempts are spent.
  Result enqueue_idx(std::uint64_t eidx, std::uint64_t max_iters) {
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t tcycle = cycle_of(t);
      const std::uint64_t j = remap(t);
      std::uint64_t e = entries_[j].load(std::memory_order_acquire);
      for (;;) {
        if (cycle_of_entry(e) < tcycle && idx_of_entry(e) == kBot() &&
            (is_safe(e) || head_.load(std::memory_order_seq_cst) <= t)) {
          const std::uint64_t fresh = pack(tcycle, true, eidx);
          if (!entries_[j].compare_exchange_weak(e, fresh,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
            continue;  // entry changed under us; re-evaluate
          }
          if (threshold_.load(std::memory_order_seq_cst) != threshold_init_) {
            threshold_.store(threshold_init_, std::memory_order_seq_cst);
          }
          return kOk;
        }
        break;  // position unusable, take the next one
      }
    }
    return kContended;
  }

  // Dequeue an index. kEmpty is definitive (threshold exhausted or
  // tail caught up); kContended means patience ran out first.
  Result dequeue_idx(std::uint64_t* out, std::uint64_t max_iters) {
    if (threshold_.load(std::memory_order_seq_cst) < 0) {
      return kEmpty;  // the paper's fast empty exit (Figure 11a)
    }
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t hcycle = cycle_of(h);
      const std::uint64_t j = remap(h);
      std::uint64_t e = entries_[j].load(std::memory_order_acquire);
      bool advanced = false;
      for (;;) {
        const std::uint64_t ecycle = cycle_of_entry(e);
        if (ecycle == hcycle) {
          consume(j, e);
          *out = idx_of_entry(e);
          return kOk;
        }
        if (ecycle < hcycle) {
          // Either advance an empty entry's cycle or mark a lagging
          // value unsafe so a slow enqueuer cannot resurrect it.
          const std::uint64_t fresh =
              idx_of_entry(e) == kBot()
                  ? pack(hcycle, is_safe(e), kBot())
                  : pack(ecycle, false, idx_of_entry(e));
          if (!entries_[j].compare_exchange_weak(e, fresh,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
            continue;
          }
        }
        advanced = true;
        break;
      }
      if (advanced) {
        const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          catchup(t, h + 1);
          threshold_.fetch_sub(1, std::memory_order_seq_cst);
          return kEmpty;
        }
        if (threshold_.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
          return kEmpty;
        }
      }
    }
    return kContended;
  }

 private:
  static constexpr unsigned kLineBits =
      detail::log2_pow2(detail::kCacheLine / sizeof(std::uint64_t));

  std::uint64_t kBot() const { return idx_mask_; }

  std::uint64_t pack(std::uint64_t cycle, bool safe, std::uint64_t idx) const {
    return (cycle << (idx_bits_ + 1)) |
           (static_cast<std::uint64_t>(safe) << idx_bits_) | idx;
  }
  std::uint64_t cycle_of(std::uint64_t pos) const {
    return pos >> (order_ + 1);
  }
  std::uint64_t cycle_of_entry(std::uint64_t e) const {
    return e >> (idx_bits_ + 1);
  }
  bool is_safe(std::uint64_t e) const {
    return ((e >> idx_bits_) & 1u) != 0;
  }
  std::uint64_t idx_of_entry(std::uint64_t e) const { return e & idx_mask_; }

  // Cache_Remap: permute positions so consecutive Head/Tail positions
  // land on distinct cache lines (8 eight-byte entries per line).
  std::uint64_t remap(std::uint64_t pos) const {
    const std::uint64_t masked = pos & (ring_size_ - 1);
    if (!remap_) return masked;
    const unsigned order2 = order_ + 1;  // log2(ring_size_)
    return ((masked >> (order2 - kLineBits)) |
            (masked << kLineBits)) &
           (ring_size_ - 1);
  }

  // Mark the entry consumed (index -> BOT) keeping cycle and safe bit.
  void consume(std::uint64_t j, std::uint64_t seen) {
    if (!portable_consume_) {
      entries_[j].fetch_or(kBot(), std::memory_order_acq_rel);
      return;
    }
    // Portable build: single-width CAS loop (LL/SC-emulation shape).
    std::uint64_t e = seen;
    while (!entries_[j].compare_exchange_weak(e, e | kBot(),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    }
  }

  void catchup(std::uint64_t t, std::uint64_t h) {
    while (!tail_.compare_exchange_weak(t, h, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      h = head_.load(std::memory_order_seq_cst);
      t = tail_.load(std::memory_order_seq_cst);
      if (t >= h) break;
    }
  }

  const unsigned order_;
  const std::uint64_t n_;
  const std::uint64_t ring_size_;
  const unsigned idx_bits_;
  const std::uint64_t idx_mask_;
  const std::int64_t threshold_init_;
  const bool remap_;
  const bool portable_consume_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::int64_t> threshold_{-1};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t>* entries_ =
      nullptr;
};

}  // namespace wcq
