// The SCQ ring (Nikolaev, DISC 2019) that wCQ extends: a bounded FIFO
// of small indices. A ring of 2n entries backs a queue of capacity n;
// Head/Tail are FAA'd position counters whose quotient by the ring
// size is the entry's expected "cycle". The `threshold` counter gives
// dequeuers a constant-time empty exit, and Cache_Remap spreads
// consecutive positions across cache lines.
//
// Two instantiations share the state machine:
//
//   ScqRingT<false> ("ScqRing")  64-bit entries, lock-free — plain SCQ.
//   ScqRingT<true>  ("WcqRing")  128-bit {word, note} entries mutated
//       by CAS2 — the wCQ ring (SPAA 2022, Figures 4-7). The second
//       word parks *notes*: revocable claims and committed results of
//       the cooperative slow path, so that any number of helpers can
//       advance one stalled operation and the commit still happens
//       exactly once (the CAS2 that flips a claim note to its phase-B
//       form is the only way the entry word changes while claimed).
//
// Word layout (64 bits):   [ cycle | is_safe (1 bit) | index ]
// where index occupies order+1 bits and all-ones means "empty" (BOT).
//
// Slow-path lifecycle of one request (RingRequest, one per thread):
//   Pending   helpers scan from req.pos; an eligible entry is *claimed*
//             with a phase-A note (word unchanged, now frozen: every
//             word mutation is a CAS2 expecting note == 0).
//   Phase2    the unique winner of the Pending->Phase2 ctl CAS names
//             the committing slot j; claims parked anywhere else are
//             revoked. Any helper then *commits* at j: one CAS2 flips
//             the phase-A note to phase-B and applies the word change
//             (install for enqueue, consume for dequeue).
//   DoneOk    any helper seeing the phase-B note delivers the result
//             (dequeue: the index rides in the note) and finalizes the
//             ctl; the note is then retired by one CAS2.
//   DoneEmpty dequeue-only: the threshold ran out first. Outstanding
//             phase-A claims are revoked lazily by whoever touches
//             them — a claim never changed the entry word, so revoking
//             is always safe, even for notes of long-dead requests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "wcq/detail.hpp"
#include "wcq/mem.hpp"

namespace wcq {

// Published state of one in-flight slow-path ring operation. Owned by
// one thread record, read and CAS-advanced by every helper.
struct alignas(detail::kNoFalseSharing) RingRequest {
  std::atomic<std::uint64_t> ctl{0};     // packed seq/j/ring/kind/state
  std::atomic<std::uint64_t> arg{0};     // enqueue: index to insert
  std::atomic<std::uint64_t> result{0};  // dequeue: index obtained
  std::atomic<std::uint64_t> pos{0};     // shared scan position; dequeue
                                         // advances it in lockstep with
                                         // the global Head ticket stream
};

template <bool Noted>
class ScqRingT {
 public:
  enum Result : int {
    kOk = 0,
    kEmpty = 1,      // definitive: queue observed empty (threshold spent)
    kContended = 2,  // patience exhausted; retry or go to a slow path
  };

  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  // Capacity is 2^order indices; the ring itself has 2^(order+1)
  // entries. `remap` toggles Cache_Remap; `portable_consume` replaces
  // the fetch_or consume with a CAS loop, mimicking the LL/SC-friendly
  // portable build of the paper's Section 4 (the noted ring's consume
  // is already a CAS2, so it only keeps the flag for interface parity).
  // `reqs` is the queue's RingRequest array, which notes reference by
  // slot; required iff Noted. `is_fq` is the ring's identity bit in
  // request ctl words (0 = free-index ring aq, 1 = value ring fq), so
  // helpers never step a request against the wrong ring.
  ScqRingT(unsigned order, bool remap, bool portable_consume,
           RingRequest* reqs = nullptr, bool is_fq = false)
      : order_(order),
        n_(std::uint64_t{1} << order),
        ring_size_(n_ * 2),
        idx_bits_(order + 1),
        idx_mask_((std::uint64_t{1} << (order + 1)) - 1),
        threshold_init_(static_cast<std::int64_t>(ring_size_ + n_ - 1)),
        remap_(remap && order + 1 > kLineBits),
        portable_consume_(portable_consume),
        reqs_(reqs),
        is_fq_(is_fq) {
    entries_ = static_cast<Entry*>(mem::alloc(ring_size_ * sizeof(Entry)));
    for (std::uint64_t j = 0; j < ring_size_; ++j) {
      entries_[j].word.store(pack(0, true, kBot()), std::memory_order_relaxed);
      if constexpr (Noted) {
        entries_[j].note.store(0, std::memory_order_relaxed);
      }
    }
    // Start positions at ring_size so live cycles begin at 1 and are
    // always distinguishable from the zero-initialised entries.
    head_.store(ring_size_, std::memory_order_relaxed);
    tail_.store(ring_size_, std::memory_order_relaxed);
    threshold_.store(-1, std::memory_order_relaxed);
  }

  ~ScqRingT() { mem::free(entries_, ring_size_ * sizeof(Entry)); }

  ScqRingT(const ScqRingT&) = delete;
  ScqRingT& operator=(const ScqRingT&) = delete;

  std::uint64_t capacity() const { return n_; }

  std::uint64_t head() const { return head_.load(std::memory_order_seq_cst); }
  std::uint64_t tail() const { return tail_.load(std::memory_order_seq_cst); }

  // Enqueue an index in [0, capacity). As long as at most `capacity`
  // indices are live the ring always has room, so the only non-kOk
  // outcome is kContended when `max_iters` attempts are spent.
  Result enqueue_idx(std::uint64_t eidx, std::uint64_t max_iters) {
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t tcycle = cycle_of(t);
      const std::uint64_t j = remap(t);
      for (;;) {
        const std::uint64_t e =
            entries_[j].word.load(std::memory_order_acquire);
        if (cycle_of_entry(e) < tcycle && idx_of_entry(e) == kBot() &&
            (is_safe(e) || head_.load(std::memory_order_seq_cst) <= t)) {
          if (!word_cas(j, e, pack(tcycle, true, eidx))) {
            if constexpr (Noted) {
              // A parked note freezes the word; resolve it, then retry.
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;  // entry changed under us; re-evaluate
          }
          reset_threshold();
          return kOk;
        }
        break;  // position unusable, take the next one
      }
    }
    return kContended;
  }

  // Dequeue an index. kEmpty is definitive (threshold exhausted or
  // tail caught up); kContended means patience ran out first.
  Result dequeue_idx(std::uint64_t* out, std::uint64_t max_iters) {
    if (threshold_.load(std::memory_order_seq_cst) < 0) {
      return kEmpty;  // the paper's fast empty exit (Figure 11a)
    }
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t hcycle = cycle_of(h);
      const std::uint64_t j = remap(h);
      bool advanced = false;
      bool consumed_by_peer = false;
      for (;;) {
        const std::uint64_t e =
            entries_[j].word.load(std::memory_order_acquire);
        const std::uint64_t ecycle = cycle_of_entry(e);
        if (ecycle == hcycle && idx_of_entry(e) != kBot()) {
          if (!consume(j, e)) {
            if constexpr (Noted) {
              // Claimed by a slow-path request sharing this position:
              // help it through; the value goes to the request and the
              // re-read will see a consumed entry (our ticket is spent).
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;
          }
          *out = idx_of_entry(e);
          return kOk;
        }
        if (ecycle < hcycle) {
          // Either advance an empty entry's cycle or mark a lagging
          // value unsafe so a slow enqueuer cannot resurrect it.
          const std::uint64_t fresh =
              idx_of_entry(e) == kBot()
                  ? pack(hcycle, is_safe(e), kBot())
                  : pack(ecycle, false, idx_of_entry(e));
          if (!word_cas(j, e, fresh)) {
            if constexpr (Noted) {
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;
          }
        }
        // ecycle == hcycle with BOT and ecycle > hcycle both land
        // here. A cleared safe bit at exactly our cycle is the slow
        // path's consume marker: our ticket's value went to a request
        // (which never held a head ticket for it), so the position
        // *did* yield a value and must not be accounted as failed —
        // in SCQ a value-yielding ticket never decrements threshold.
        if constexpr (Noted) {
          consumed_by_peer =
              ecycle == hcycle && idx_of_entry(e) == kBot() && !is_safe(e);
        }
        advanced = true;
        break;
      }
      if (advanced) {
        const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          catchup(t, h + 1);
          threshold_.fetch_sub(1, std::memory_order_seq_cst);
          return kEmpty;
        }
        if (!consumed_by_peer &&
            threshold_.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
          return kEmpty;
        }
      }
    }
    return kContended;
  }

  // ---- cooperative slow path (Noted only) ---------------------------

  // Drive `r`'s published operation until its state leaves
  // {Pending, Phase2}. The owner and any number of helpers run this
  // concurrently; every step is a CAS on shared state, so all of them
  // make progress on the *same* request — nobody claims it exclusively.
  void help_slow(RingRequest* r)
    requires(Noted)
  {
    for (;;) {
      const std::uint64_t c = r->ctl.load(std::memory_order_acquire);
      const std::uint64_t st = detail::ctl_state(c);
      if (st != detail::kReqPending && st != detail::kReqPhase2) {
        return;  // done (or already reused)
      }
      if (detail::ctl_fq(c) != is_fq_) return;  // request moved rings
      if (st == detail::kReqPhase2) {
        // Commit slot decided: converge on j until the note retires.
        const std::uint64_t j = detail::ctl_j(c);
        const std::uint64_t n =
            entries_[j].note.load(std::memory_order_acquire);
        if (n != 0) {
          help_note(j, n);
        } else {
          detail::cpu_pause();  // read skew; the ctl re-load resolves it
        }
        continue;
      }
      if (detail::ctl_deq(c)) {
        step_dequeue(r, c);
      } else {
        step_enqueue(r, c);
      }
    }
  }

 private:
  struct PlainEntry {
    std::atomic<std::uint64_t> word;
  };
  struct alignas(16) NotedEntry {
    std::atomic<std::uint64_t> word;
    std::atomic<std::uint64_t> note;
  };
  using Entry = std::conditional_t<Noted, NotedEntry, PlainEntry>;
  // pair_cas reinterprets a NotedEntry as detail::Pair (see the
  // aliasing contract above Pair); these pin the layout it relies on.
  static_assert(!Noted || sizeof(NotedEntry) == sizeof(detail::Pair));
  static_assert(offsetof(NotedEntry, word) == offsetof(detail::Pair, word) &&
                offsetof(NotedEntry, note) == offsetof(detail::Pair, note));

  static constexpr unsigned kLineBits =
      detail::log2_pow2(detail::kCacheLine / sizeof(Entry));

  std::uint64_t kBot() const { return idx_mask_; }

  std::uint64_t pack(std::uint64_t cycle, bool safe, std::uint64_t idx) const {
    return (cycle << (idx_bits_ + 1)) |
           (static_cast<std::uint64_t>(safe) << idx_bits_) | idx;
  }
  std::uint64_t cycle_of(std::uint64_t pos) const {
    return pos >> (order_ + 1);
  }
  std::uint64_t cycle_of_entry(std::uint64_t e) const {
    return e >> (idx_bits_ + 1);
  }
  bool is_safe(std::uint64_t e) const {
    return ((e >> idx_bits_) & 1u) != 0;
  }
  std::uint64_t idx_of_entry(std::uint64_t e) const { return e & idx_mask_; }

  // Cache_Remap: permute positions so consecutive Head/Tail positions
  // land on distinct cache lines.
  std::uint64_t remap(std::uint64_t pos) const {
    const std::uint64_t masked = pos & (ring_size_ - 1);
    if (!remap_) return masked;
    const unsigned order2 = order_ + 1;  // log2(ring_size_)
    return ((masked >> (order2 - kLineBits)) | (masked << kLineBits)) &
           (ring_size_ - 1);
  }

  // Inverse permutation: the slow path reconstructs a position from
  // (cycle, slot) when bumping Head/Tail past a committed operation.
  std::uint64_t unremap(std::uint64_t j) const {
    if (!remap_) return j;
    const unsigned order2 = order_ + 1;
    return ((j << (order2 - kLineBits)) | (j >> kLineBits)) &
           (ring_size_ - 1);
  }

  // Word-only CAS. In the noted ring every plain word mutation expects
  // note == 0, which is what freezes a claimed entry.
  bool word_cas(std::uint64_t j, std::uint64_t expected,
                std::uint64_t desired) {
    if constexpr (Noted) {
      return pair_cas(j, {expected, 0}, {desired, 0});
    } else {
      std::uint64_t e = expected;
      return entries_[j].word.compare_exchange_strong(
          e, desired, std::memory_order_acq_rel, std::memory_order_acquire);
    }
  }

  bool pair_cas(std::uint64_t j, detail::Pair expected, detail::Pair desired)
    requires(Noted)
  {
    detail::Pair* addr = reinterpret_cast<detail::Pair*>(&entries_[j]);
    return portable_consume_ ? detail::cas2_portable(addr, &expected, desired)
                             : detail::cas2(addr, &expected, desired);
  }

  // Mark the entry consumed (index -> BOT) keeping cycle and safe bit.
  // Returns false when the entry moved (noted ring: possibly because a
  // note is parked on it) — the caller re-evaluates.
  bool consume(std::uint64_t j, std::uint64_t seen) {
    if constexpr (Noted) {
      return word_cas(j, seen, seen | kBot());
    } else if (!portable_consume_) {
      entries_[j].word.fetch_or(kBot(), std::memory_order_acq_rel);
      return true;
    } else {
      // Portable build: single-width CAS loop (LL/SC-emulation shape).
      std::uint64_t e = seen;
      while (!entries_[j].word.compare_exchange_weak(
          e, e | kBot(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
      }
      return true;
    }
  }

  void reset_threshold() {
    if (threshold_.load(std::memory_order_seq_cst) != threshold_init_) {
      threshold_.store(threshold_init_, std::memory_order_seq_cst);
    }
  }

  void catchup(std::uint64_t t, std::uint64_t h) {
    while (!tail_.compare_exchange_weak(t, h, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      h = head_.load(std::memory_order_seq_cst);
      t = tail_.load(std::memory_order_seq_cst);
      if (t >= h) break;
    }
  }

  // CAS-max a position counter forward; bounded because every failure
  // means someone else advanced it.
  static void bump(std::atomic<std::uint64_t>& ctr, std::uint64_t target) {
    std::uint64_t c = ctr.load(std::memory_order_seq_cst);
    while (c < target &&
           !ctr.compare_exchange_weak(c, target, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
    }
  }

  // ---- note resolution (Noted only) ---------------------------------

  std::uint64_t slot_of(const RingRequest* r) const {
    return static_cast<std::uint64_t>(r - reqs_);
  }

  // Resolve whatever note is parked at slot j: advance the owning
  // request one step (commit decision, commit, result delivery) or
  // clear the note if its request is over. Callers loop; every call
  // makes global progress or observes someone else's.
  void help_note(std::uint64_t j, std::uint64_t n)
    requires(Noted)
  {
    RingRequest* r = &reqs_[detail::note_slot(n)];
    const std::uint64_t c = r->ctl.load(std::memory_order_acquire);
    const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
    if (!detail::note_matches_ctl(n, c)) {
      // Stale note of a finished request. Phase-A never changed the
      // word, and a phase-B note's result was delivered before its
      // owner could retire the request, so clearing is always safe.
      pair_cas(j, {w, n}, {w, 0});
      return;
    }
    const std::uint64_t st = detail::ctl_state(c);
    if (st == detail::kReqPending) {
      // A claim exists but no commit slot is decided: propose this one.
      // Exactly one Pending->Phase2 transition per seq ever succeeds.
      if (!detail::note_phase_b(n)) {
        std::uint64_t expc = c;
        r->ctl.compare_exchange_strong(
            expc, detail::ctl_with(c, j, detail::kReqPhase2),
            std::memory_order_acq_rel, std::memory_order_acquire);
      }
      return;
    }
    if (st == detail::kReqPhase2) {
      if (detail::ctl_j(c) != j) {
        // A claim that lost the commit decision: revoke it.
        if (!detail::note_phase_b(n)) pair_cas(j, {w, n}, {w, 0});
        return;
      }
      if (!detail::note_phase_b(n)) {
        commit(r, j, n, w);
      } else {
        finalize(r, c, j, n);
      }
      return;
    }
    // Terminal state (DoneOk / DoneEmpty): phase-B notes are retired,
    // phase-A claims revoked — both are "clear the note, keep the word".
    pair_cas(j, {w, n}, {w, 0});
  }

  // Apply the committed operation at slot j: one CAS2 flips the
  // phase-A claim to phase-B and performs the word change. Exactly one
  // such CAS2 can succeed; racing helpers fail benignly and re-read.
  void commit(RingRequest* r, std::uint64_t j, std::uint64_t n,
              std::uint64_t w)
    requires(Noted)
  {
    const std::uint64_t slot = detail::note_slot(n);
    const std::uint64_t seq = detail::note_seq(n);
    if (detail::note_deq(n)) {
      // Consume: the index rides into the phase-B note so the result
      // survives even if this helper stalls right after the CAS2. The
      // safe bit is cleared so the word is distinguishable from an
      // empty close at the same cycle: the fast dequeuer whose head
      // ticket maps here must see that its position yielded a value
      // (to the request) and skip the threshold decrement.
      const std::uint64_t x = detail::note_aux(n);
      const std::uint64_t consumed = pack(cycle_of_entry(w), false, kBot());
      if (pair_cas(j, {w, n},
                   {consumed, detail::pack_note(true, true, slot, seq, x)})) {
        bump(head_, (cycle_of_entry(w) << (order_ + 1)) + unremap(j) + 1);
      }
      return;
    }
    // Install: reconstruct the claim's target cycle from its low bits
    // (the claim guaranteed the gap to the frozen word's cycle fits).
    const std::uint64_t low = detail::note_aux(n);
    const std::uint64_t wc = cycle_of_entry(w);
    std::uint64_t tcycle = (wc & ~detail::kNoteAuxMask) | low;
    if (tcycle <= wc) tcycle += detail::kNoteAuxMask + 1;
    const std::uint64_t eidx = r->arg.load(std::memory_order_acquire);
    if (pair_cas(j, {w, n},
                 {pack(tcycle, true, eidx),
                  detail::pack_note(true, false, slot, seq, eidx)})) {
      reset_threshold();
      bump(tail_, (tcycle << (order_ + 1)) + unremap(j) + 1);
    }
  }

  // Deliver the result and finalize the ctl, then retire the phase-B
  // note. Every step is idempotent-by-CAS; any helper may run it. The
  // result CAS is seq-tagged so a finalizer that stalled here for a
  // whole operation lifetime cannot clobber a successor's result.
  void finalize(RingRequest* r, std::uint64_t c, std::uint64_t j,
                std::uint64_t n)
    requires(Noted)
  {
    const std::uint64_t seq = detail::ctl_seq(c);
    if (detail::ctl_deq(c)) {
      std::uint64_t expr = detail::pack_result(seq, detail::kResultNone);
      r->result.compare_exchange_strong(
          expr, detail::pack_result(seq, detail::note_aux(n)),
          std::memory_order_acq_rel, std::memory_order_acquire);
    }
    // Result is in place (by us or a sibling) before the ctl goes
    // terminal, so the owner can read it with a single load.
    std::uint64_t expc = c;
    r->ctl.compare_exchange_strong(expc,
                                   detail::ctl_with(c, j, detail::kReqDoneOk),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
    // Ctl is now terminal (by us or a sibling); retire the note. A
    // failed CAS just leaves the now-stale note for any toucher.
    const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
    pair_cas(j, {w, n}, {w, 0});
  }

  // One Pending-state step of a slow dequeue: claim a value, account
  // an empty position, or finalize empty.
  //
  // Threshold accounting rides on the *global* head ticket stream, as
  // in the paper: a spent scan position decrements threshold only via
  // a successful CAS of head_ from p to p+1, which takes ticket p for
  // this request exactly the way a fast dequeuer's FAA would. FAA and
  // CAS serialize on head_, so every ticket has one owner and hence at
  // most one decrement — no matter how many slow requests scan the
  // same positions concurrently (their head CASes for a shared p all
  // lose but one) and no matter how many fast dequeuers interleave
  // (a ticket the FAA stream took makes our CAS fail, and its holder
  // is the accountant). A stalled helper never blocks accounting: the
  // head CAS is attempted by every helper at p before the pos advance,
  // and the one success is itself the idempotence token.
  void step_dequeue(RingRequest* r, std::uint64_t c)
    requires(Noted)
  {
    if (threshold_.load(std::memory_order_seq_cst) < 0) {
      try_finalize_empty(r, c);
      return;
    }
    const std::uint64_t p = r->pos.load(std::memory_order_acquire);
    const std::uint64_t pcycle = cycle_of(p);
    const std::uint64_t j = remap(p);
    const std::uint64_t n = entries_[j].note.load(std::memory_order_acquire);
    if (n != 0) {
      help_note(j, n);  // ours: drives the commit decision; foreign: unblocks
      return;
    }
    const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
    const std::uint64_t ec = cycle_of_entry(w);
    if (ec == pcycle && idx_of_entry(w) != kBot()) {
      // Claim the value: word frozen, index recorded in the note.
      pair_cas(j, {w, 0},
               {w, detail::pack_note(false, true, slot_of(r),
                                     detail::ctl_seq(c), idx_of_entry(w))});
      return;
    }
    if (ec > pcycle) {
      // Our scan position fell behind the ring; jump it forward.
      advance_pos(r, p, head_.load(std::memory_order_seq_cst));
      return;
    }
    if (ec < pcycle) {
      const std::uint64_t fresh =
          idx_of_entry(w) == kBot() ? pack(pcycle, is_safe(w), kBot())
                                    : pack(ec, false, idx_of_entry(w));
      if (!word_cas(j, w, fresh)) return;
      // Spent as empty at pcycle; fall through to account ticket p.
    }
    // Position p is spent: closed empty just now, or already at our
    // cycle with BOT. The cleared safe bit marks a slow-path consume —
    // that position yielded a value, so even if we end up owning its
    // ticket (the committer may have stalled before bumping head_) it
    // must not be accounted as a failed position.
    const bool consumed_here =
        ec == pcycle && idx_of_entry(w) == kBot() && !is_safe(w);
    std::uint64_t hexp = p;
    if (head_.compare_exchange_strong(hexp, p + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst) &&
        !consumed_here) {
      // Ticket p is ours and yielded nothing: the fast path's rules.
      const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
      if (t <= p + 1) {
        catchup(t, p + 1);
        threshold_.fetch_sub(1, std::memory_order_seq_cst);
        try_finalize_empty(r, c);
      } else if (threshold_.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        try_finalize_empty(r, c);
      }
    }
    // Ticket p accounted (by us, a sibling helper, or the fast holder
    // head_'s FAA stream gave it to); the scan may move on.
    advance_pos(r, p, p + 1);
  }

  // One Pending-state step of a slow enqueue: claim an eligible empty
  // entry or advance the scan. Never finalizes empty — both rings of
  // the queue construction have guaranteed room for their index.
  void step_enqueue(RingRequest* r, std::uint64_t c)
    requires(Noted)
  {
    const std::uint64_t p = r->pos.load(std::memory_order_acquire);
    const std::uint64_t pcycle = cycle_of(p);
    const std::uint64_t j = remap(p);
    const std::uint64_t n = entries_[j].note.load(std::memory_order_acquire);
    if (n != 0) {
      help_note(j, n);
      return;
    }
    const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
    const std::uint64_t ec = cycle_of_entry(w);
    if (ec < pcycle && idx_of_entry(w) == kBot() &&
        (is_safe(w) || head_.load(std::memory_order_seq_cst) <= p)) {
      if (pcycle - ec > detail::kNoteAuxMask) {
        // Ancient entry: the claim's aux bits could not reconstruct
        // the target cycle unambiguously. Normalize first (advancing
        // an empty entry's cycle is what dequeuers do all the time).
        word_cas(j, w, pack(pcycle - 1, is_safe(w), kBot()));
        return;
      }
      // Claim: word frozen, target cycle's low bits recorded.
      pair_cas(j, {w, 0},
               {w, detail::pack_note(false, false, slot_of(r),
                                     detail::ctl_seq(c),
                                     pcycle & detail::kNoteAuxMask)});
      return;
    }
    std::uint64_t next = p + 1;
    if (ec > pcycle) {
      // Scan fell behind; jump toward the live tail.
      const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
      if (t > next) next = t;
    }
    advance_pos(r, p, next);
  }

  bool advance_pos(RingRequest* r, std::uint64_t p, std::uint64_t target)
    requires(Noted)
  {
    if (target <= p) target = p + 1;
    return r->pos.compare_exchange_strong(p, target, std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  void try_finalize_empty(RingRequest* r, std::uint64_t c)
    requires(Noted)
  {
    std::uint64_t expc = c;
    r->ctl.compare_exchange_strong(expc,
                                   detail::ctl_with(c, 0, detail::kReqDoneEmpty),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  }

  const unsigned order_;
  const std::uint64_t n_;
  const std::uint64_t ring_size_;
  const unsigned idx_bits_;
  const std::uint64_t idx_mask_;
  const std::int64_t threshold_init_;
  const bool remap_;
  const bool portable_consume_;
  RingRequest* const reqs_;
  const bool is_fq_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::int64_t> threshold_{-1};
  alignas(detail::kNoFalseSharing) Entry* entries_ = nullptr;
};

using ScqRing = ScqRingT<false>;
using WcqRing = ScqRingT<true>;

}  // namespace wcq
