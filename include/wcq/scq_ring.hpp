// The ring kernel: SCQ's bounded FIFO of small indices (Nikolaev,
// DISC 2019) as a composition of the layer headers —
//
//   ring_math.hpp     Geometry (cycle/index packing) + Remap
//                     (Cache_Remap / identity position permutation)
//   ring_entry.hpp    entry codecs (plain word vs {word, note} pair)
//   ring_policy.hpp   empty detection (ScqThreshold vs NoThreshold)
//   ring_noted.hpp    the wCQ helping/note layer — out-of-line
//                     definitions of the members declared here under
//                     requires(Noted); only wcq.hpp includes it
//
// A ring of 2n entries backs a queue of capacity n; Head/Tail are
// FAA'd position counters whose quotient by the ring size is the
// entry's expected "cycle". The `threshold` counter gives dequeuers a
// constant-time empty exit, and Cache_Remap spreads consecutive
// positions across cache lines.
//
// Instantiations sharing the state machine:
//
//   ScqRingT<false>        ("ScqRing")  64-bit entries, lock-free —
//       plain SCQ, and the building block of ScqQueue's aq/fq pair.
//   ScqRingT<true>         ("WcqRing")  128-bit {word, note} entries
//       mutated by CAS2 — the wCQ ring (SPAA 2022, Figures 4-7). The
//       second word parks *notes*: revocable claims and committed
//       results of the cooperative slow path, so that any number of
//       helpers can advance one stalled operation and the commit still
//       happens exactly once (the CAS2 that flips a claim note to its
//       phase-B form is the only way the entry word changes while
//       claimed).
//   ScqRingT<false, true>  ("FinalScqRing")  plain SCQ plus a closed
//       bit in Tail: once close() is called no new enqueue ticket is
//       issued, and drain_idx() sweeps the surviving tickets so an
//       LSCQ segment can be proven sterile before it is retired to
//       SMR. For non-finalizable instantiations every closed-bit
//       branch folds away and the generated code is the plain ring's.
//
// Word layout (64 bits):   [ cycle | is_safe (1 bit) | index ]
// where index occupies order+1 bits and all-ones means "empty" (BOT).
//
// Slow-path lifecycle of one request (RingRequest, one per thread):
//   Pending   helpers scan from req.pos; an eligible entry is *claimed*
//             with a phase-A note (word unchanged, now frozen: every
//             word mutation is a CAS2 expecting note == 0).
//   Phase2    the unique winner of the Pending->Phase2 ctl CAS names
//             the committing slot j; claims parked anywhere else are
//             revoked. Any helper then *commits* at j: one CAS2 flips
//             the phase-A note to phase-B and applies the word change
//             (install for enqueue, consume for dequeue).
//   DoneOk    any helper seeing the phase-B note delivers the result
//             (dequeue: the index rides in the note) and finalizes the
//             ctl; the note is then retired by one CAS2.
//   DoneEmpty dequeue-only: the threshold ran out first. Outstanding
//             phase-A claims are revoked lazily by whoever touches
//             them — a claim never changed the entry word, so revoking
//             is always safe, even for notes of long-dead requests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "wcq/detail.hpp"
#include "wcq/mem.hpp"
#include "wcq/ring_entry.hpp"
#include "wcq/ring_math.hpp"
#include "wcq/ring_policy.hpp"

namespace wcq {

// Published state of one in-flight slow-path ring operation. Owned by
// one thread record, read and CAS-advanced by every helper.
struct alignas(detail::kNoFalseSharing) RingRequest {
  std::atomic<std::uint64_t> ctl{0};     // packed seq/j/ring/kind/state
  std::atomic<std::uint64_t> arg{0};     // enqueue: index to insert
  std::atomic<std::uint64_t> result{0};  // dequeue: index obtained
  std::atomic<std::uint64_t> pos{0};     // shared scan position; dequeue
                                         // advances it in lockstep with
                                         // the global Head ticket stream
};

template <bool Noted, bool Finalizable = false>
class ScqRingT {
  // The noted ring is the queue-level wCQ ring; segment finalization
  // belongs to plain rings inside LSCQ. Nothing needs both.
  static_assert(!(Noted && Finalizable));

 public:
  enum Result : int {
    kOk = 0,
    kEmpty = 1,      // definitive: queue observed empty (threshold spent)
    kContended = 2,  // patience exhausted; retry or go to a slow path
    kClosed = 3,     // Finalizable only: ring closed, no ticket issued
  };

  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  // Capacity is 2^order indices; the ring itself has 2^(order+1)
  // entries. `remap` toggles Cache_Remap; `portable_consume` replaces
  // the fetch_or consume with a CAS loop, mimicking the LL/SC-friendly
  // portable build of the paper's Section 4 (the noted ring's consume
  // is already a CAS2, so it only keeps the flag for interface parity).
  // `reqs` is the queue's RingRequest array, which notes reference by
  // slot; required iff Noted. `is_fq` is the ring's identity bit in
  // request ctl words (0 = free-index ring aq, 1 = value ring fq), so
  // helpers never step a request against the wrong ring.
  ScqRingT(unsigned order, bool remap, bool portable_consume,
           RingRequest* reqs = nullptr, bool is_fq = false)
      : geo_(order),
        remap_(remap ? ring::Remap::cache(geo_, kLineBits)
                     : ring::Remap::identity(geo_)),
        portable_consume_(portable_consume),
        reqs_(reqs),
        is_fq_(is_fq),
        threshold_(geo_) {
    entries_ = static_cast<Entry*>(
        mem::alloc(geo_.ring_size() * sizeof(Entry)));
    for (std::uint64_t j = 0; j < geo_.ring_size(); ++j) {
      entries_[j].word.store(geo_.pack(0, true, geo_.bot()),
                             std::memory_order_relaxed);
      if constexpr (Noted) {
        entries_[j].note.store(0, std::memory_order_relaxed);
      }
    }
    // Start positions at ring_size so live cycles begin at 1 and are
    // always distinguishable from the zero-initialised entries.
    head_.store(geo_.ring_size(), std::memory_order_relaxed);
    tail_.store(geo_.ring_size(), std::memory_order_relaxed);
  }

  ~ScqRingT() { mem::free(entries_, geo_.ring_size() * sizeof(Entry)); }

  ScqRingT(const ScqRingT&) = delete;
  ScqRingT& operator=(const ScqRingT&) = delete;

  std::uint64_t capacity() const { return geo_.capacity(); }

  std::uint64_t head() const { return head_.load(std::memory_order_seq_cst); }
  std::uint64_t tail() const {
    return tail_pos(tail_.load(std::memory_order_seq_cst));
  }

  // Enqueue an index in [0, capacity). As long as at most `capacity`
  // indices are live the ring always has room, so the only non-kOk
  // outcome is kContended when `max_iters` attempts are spent (or
  // kClosed once a finalizable ring is closed).
  Result enqueue_idx(std::uint64_t eidx, std::uint64_t max_iters) {
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      if constexpr (Finalizable) {
        // Cheap pre-check; the FAA below is the authoritative one.
        if (tail_.load(std::memory_order_seq_cst) & kClosedBit) {
          return kClosed;
        }
      }
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      if constexpr (Finalizable) {
        if (t & kClosedBit) return kClosed;
      }
      const std::uint64_t tcycle = geo_.cycle_of_pos(t);
      const std::uint64_t j = remap_.map(t);
      for (;;) {
        const std::uint64_t e =
            entries_[j].word.load(std::memory_order_acquire);
        if (geo_.cycle_of_entry(e) < tcycle &&
            geo_.idx_of_entry(e) == geo_.bot() &&
            (geo_.is_safe(e) ||
             head_.load(std::memory_order_seq_cst) <= t)) {
          if (!word_cas(j, e, geo_.pack(tcycle, true, eidx))) {
            if constexpr (Noted) {
              // A parked note freezes the word; resolve it, then retry.
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;  // entry changed under us; re-evaluate
          }
          threshold_.arm();
          return kOk;
        }
        break;  // position unusable, take the next one
      }
    }
    return kContended;
  }

  // Dequeue an index. kEmpty is definitive (threshold exhausted or
  // tail caught up); kContended means patience ran out first.
  Result dequeue_idx(std::uint64_t* out, std::uint64_t max_iters) {
    if (threshold_.spent()) {
      return kEmpty;  // the paper's fast empty exit (Figure 11a)
    }
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t hcycle = geo_.cycle_of_pos(h);
      const std::uint64_t j = remap_.map(h);
      bool advanced = false;
      bool consumed_by_peer = false;
      for (;;) {
        const std::uint64_t e =
            entries_[j].word.load(std::memory_order_acquire);
        const std::uint64_t ecycle = geo_.cycle_of_entry(e);
        if (ecycle == hcycle && geo_.idx_of_entry(e) != geo_.bot()) {
          if (!consume(j, e)) {
            if constexpr (Noted) {
              // Claimed by a slow-path request sharing this position:
              // help it through; the value goes to the request and the
              // re-read will see a consumed entry (our ticket is spent).
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;
          }
          *out = geo_.idx_of_entry(e);
          return kOk;
        }
        if (ecycle < hcycle) {
          // Either advance an empty entry's cycle or mark a lagging
          // value unsafe so a slow enqueuer cannot resurrect it.
          const std::uint64_t fresh =
              geo_.idx_of_entry(e) == geo_.bot()
                  ? geo_.pack(hcycle, geo_.is_safe(e), geo_.bot())
                  : geo_.pack(ecycle, false, geo_.idx_of_entry(e));
          if (!word_cas(j, e, fresh)) {
            if constexpr (Noted) {
              const std::uint64_t n =
                  entries_[j].note.load(std::memory_order_acquire);
              if (n != 0) help_note(j, n);
            }
            continue;
          }
        }
        // ecycle == hcycle with BOT and ecycle > hcycle both land
        // here. A cleared safe bit at exactly our cycle is the slow
        // path's consume marker: our ticket's value went to a request
        // (which never held a head ticket for it), so the position
        // *did* yield a value and must not be accounted as failed —
        // in SCQ a value-yielding ticket never decrements threshold.
        if constexpr (Noted) {
          consumed_by_peer = ecycle == hcycle &&
                             geo_.idx_of_entry(e) == geo_.bot() &&
                             !geo_.is_safe(e);
        }
        advanced = true;
        break;
      }
      if (advanced) {
        const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
        if (tail_pos(t) <= h + 1) {
          catchup(t, h + 1);
          threshold_.spend();
          return kEmpty;
        }
        if (!consumed_by_peer && threshold_.spend()) {
          return kEmpty;
        }
      }
    }
    return kContended;
  }

  // ---- segment finalization (Finalizable only) ----------------------

  // Close the ring: every enqueue ticket issued from now on aborts
  // with kClosed before touching an entry. Idempotent.
  void close()
    requires(Finalizable)
  {
    tail_.fetch_or(kClosedBit, std::memory_order_seq_cst);
  }

  bool closed() const
    requires(Finalizable)
  {
    return (tail_.load(std::memory_order_seq_cst) & kClosedBit) != 0;
  }

  // Post-close sweep. Burns head tickets past every position a
  // pre-close enqueue ticket could still install at, bypassing the
  // threshold (which may be spent while such installs are in flight).
  // kOk hands out a surviving value; kEmpty is a *sterility*
  // certificate: head has met tail, every pre-close ticket's position
  // was consumed or poisoned, and no install can land here anymore —
  // the ring may be retired. Callers loop on kOk.
  Result drain_idx(std::uint64_t* out)
    requires(Finalizable)
  {
    for (;;) {
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t hcycle = geo_.cycle_of_pos(h);
      const std::uint64_t j = remap_.map(h);
      for (;;) {
        const std::uint64_t e =
            entries_[j].word.load(std::memory_order_acquire);
        const std::uint64_t ecycle = geo_.cycle_of_entry(e);
        if (ecycle == hcycle && geo_.idx_of_entry(e) != geo_.bot()) {
          if (!consume(j, e)) continue;
          *out = geo_.idx_of_entry(e);
          return kOk;
        }
        if (ecycle < hcycle) {
          // Advance-or-poison, exactly as a dequeuer would: once the
          // cycle moves past a pre-close ticket's target (or the safe
          // bit drops), its install CAS can no longer succeed.
          const std::uint64_t fresh =
              geo_.idx_of_entry(e) == geo_.bot()
                  ? geo_.pack(hcycle, geo_.is_safe(e), geo_.bot())
                  : geo_.pack(ecycle, false, geo_.idx_of_entry(e));
          if (!word_cas(j, e, fresh)) continue;
        }
        break;
      }
      const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
      if (tail_pos(t) <= h + 1) {
        catchup(t, h + 1);
        return kEmpty;
      }
    }
  }

  // ---- cooperative slow path (Noted only) ---------------------------
  // Defined out-of-line in ring_noted.hpp (included by wcq.hpp): drive
  // `r`'s published operation until its state leaves {Pending, Phase2}.
  // The owner and any number of helpers run this concurrently; every
  // step is a CAS on shared state, so all of them make progress on the
  // *same* request — nobody claims it exclusively.
  void help_slow(RingRequest* r)
    requires(Noted);

 private:
  using Entry = std::conditional_t<Noted, ring::NotedEntry, ring::PlainEntry>;

  static constexpr unsigned kLineBits =
      detail::log2_pow2(detail::kCacheLine / sizeof(Entry));

  // Bit 63 of tail_ is the Finalizable closed flag; positions are the
  // low 63 bits. Non-finalizable rings never set it, and tail_pos is
  // the identity for them.
  static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 63;

  static constexpr std::uint64_t tail_pos(std::uint64_t t) {
    if constexpr (Finalizable) {
      return t & ~kClosedBit;
    } else {
      return t;
    }
  }

  // Word-only CAS. In the noted ring every plain word mutation expects
  // note == 0, which is what freezes a claimed entry.
  bool word_cas(std::uint64_t j, std::uint64_t expected,
                std::uint64_t desired) {
    if constexpr (Noted) {
      return pair_cas(j, {expected, 0}, {desired, 0});
    } else {
      std::uint64_t e = expected;
      return entries_[j].word.compare_exchange_strong(
          e, desired, std::memory_order_acq_rel, std::memory_order_acquire);
    }
  }

  bool pair_cas(std::uint64_t j, detail::Pair expected, detail::Pair desired)
    requires(Noted)
  {
    return ring::pair_cas(&entries_[j], expected, desired, portable_consume_);
  }

  // Mark the entry consumed (index -> BOT) keeping cycle and safe bit.
  // Returns false when the entry moved (noted ring: possibly because a
  // note is parked on it) — the caller re-evaluates.
  bool consume(std::uint64_t j, std::uint64_t seen) {
    if constexpr (Noted) {
      return word_cas(j, seen, seen | geo_.bot());
    } else if (!portable_consume_) {
      entries_[j].word.fetch_or(geo_.bot(), std::memory_order_acq_rel);
      return true;
    } else {
      // Portable build: single-width CAS loop (LL/SC-emulation shape).
      std::uint64_t e = seen;
      while (!entries_[j].word.compare_exchange_weak(
          e, e | geo_.bot(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
      }
      return true;
    }
  }

  void catchup(std::uint64_t t, std::uint64_t h) {
    // The CAS keeps the closed bit exactly as read; only the position
    // half of tail_ moves.
    while (!tail_.compare_exchange_weak(
        t, Finalizable ? (h | (t & kClosedBit)) : h,
        std::memory_order_seq_cst, std::memory_order_seq_cst)) {
      h = head_.load(std::memory_order_seq_cst);
      t = tail_.load(std::memory_order_seq_cst);
      if (tail_pos(t) >= h) break;
    }
  }

  // CAS-max a position counter forward; bounded because every failure
  // means someone else advanced it.
  static void bump(std::atomic<std::uint64_t>& ctr, std::uint64_t target) {
    std::uint64_t c = ctr.load(std::memory_order_seq_cst);
    while (c < target &&
           !ctr.compare_exchange_weak(c, target, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
    }
  }

  // ---- note resolution (Noted only) ---------------------------------
  // Declared here, defined out-of-line in ring_noted.hpp — the helping
  // layer only the wCQ instantiation pulls in.

  std::uint64_t slot_of(const RingRequest* r) const {
    return static_cast<std::uint64_t>(r - reqs_);
  }

  void help_note(std::uint64_t j, std::uint64_t n)
    requires(Noted);
  void commit(RingRequest* r, std::uint64_t j, std::uint64_t n,
              std::uint64_t w)
    requires(Noted);
  void finalize(RingRequest* r, std::uint64_t c, std::uint64_t j,
                std::uint64_t n)
    requires(Noted);
  void step_dequeue(RingRequest* r, std::uint64_t c)
    requires(Noted);
  void step_enqueue(RingRequest* r, std::uint64_t c)
    requires(Noted);
  bool advance_pos(RingRequest* r, std::uint64_t p, std::uint64_t target)
    requires(Noted);
  void try_finalize_empty(RingRequest* r, std::uint64_t c)
    requires(Noted);

  const ring::Geometry geo_;
  const ring::Remap remap_;
  const bool portable_consume_;
  RingRequest* const reqs_;
  const bool is_fq_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) ring::ScqThreshold threshold_;
  alignas(detail::kNoFalseSharing) Entry* entries_ = nullptr;
};

using ScqRing = ScqRingT<false>;
using WcqRing = ScqRingT<true>;
// LSCQ's segment value ring: plain SCQ plus close()/drain_idx().
using FinalScqRing = ScqRingT<false, true>;

}  // namespace wcq
