/// \file
/// wcq::options — the one configuration object every backend consumes.
///
/// A fluent builder (each setter returns *this) so call sites read as
/// a sentence:
///
/// \code
///   wcq::queue<std::uint64_t> q(
///       wcq::options{}.order(16).max_threads(64).help_delay(16));
/// \endcode
///
/// Knobs not meaningful for a given backend are simply ignored by it
/// (e.g. patience for SCQ, seg_order for everything but FAA), so one
/// options value can configure a whole lineup of queues identically —
/// which is exactly what the benchmark harness does.
#pragma once

namespace wcq {

/// How `wcq::sharded<T>` picks the shard an operation lands on.
/// Ordering contract per picker is documented on wcq/sharded.hpp; all
/// of them preserve per-shard FIFO, only `sequenced` restores a global
/// order (by serializing the picker — test builds, not production).
enum class shard_policy : unsigned char {
  round_robin,  ///< per-handle cursor, one step per op (default)
  sticky,       ///< producer/consumer shard affinity, rebalance on
                ///< full (push) or empty (pop)
  load_aware,   ///< two-choice by approximate shard occupancy
  sequenced,    ///< global ticket order under a picker lock (tests)
};

/// Fluent configuration builder shared by every queue backend.
///
/// Defaults match the paper's §6 methodology (2^16 ring, patience
/// 16/64, HELP_DELAY 16, Cache_Remap on). Each setter returns *this;
/// the same-name no-argument overload reads the knob back.
class options {
 public:
  constexpr options() = default;

  /// Ring capacity = 2^order values (bounded backends; paper §6
  /// uses 16).
  constexpr options& order(unsigned v) {
    order_ = v;
    return *this;
  }
  constexpr unsigned order() const { return order_; }

  /// Upper bound on *simultaneously live* handles. With RAII
  /// recycling this is a concurrency bound, not a lifetime-total
  /// bound.
  constexpr options& max_threads(unsigned v) {
    max_threads_ = v;
    return *this;
  }
  constexpr unsigned max_threads() const { return max_threads_; }

  /// Fast-path attempts before an enqueue is published for helping
  /// (wCQ; paper §6 default 16).
  constexpr options& enqueue_patience(unsigned v) {
    enqueue_patience_ = v;
    return *this;
  }
  constexpr unsigned enqueue_patience() const { return enqueue_patience_; }

  /// Fast-path attempts before a dequeue is published for helping
  /// (wCQ; paper §6 default 64).
  constexpr options& dequeue_patience(unsigned v) {
    dequeue_patience_ = v;
    return *this;
  }
  constexpr unsigned dequeue_patience() const { return dequeue_patience_; }

  /// Both patience knobs at once, preserving the paper's 1:4 shape
  /// when callers sweep a single value.
  constexpr options& patience(unsigned enq, unsigned deq) {
    enqueue_patience_ = enq;
    dequeue_patience_ = deq;
    return *this;
  }

  /// Own operations between peer help checks (wCQ §3.1).
  constexpr options& help_delay(unsigned v) {
    help_delay_ = v;
    return *this;
  }
  constexpr unsigned help_delay() const { return help_delay_; }

  /// Cache_Remap position permutation (§2; Ablation A3).
  constexpr options& remap(bool v) {
    remap_ = v;
    return *this;
  }
  constexpr bool remap() const { return remap_; }

  /// LL/SC-shaped ring operations (the §4 portable build) for
  /// backends that support both forms in one type (SCQ). wCQ's
  /// portable build is a distinct type (WcqPortableQueue) and ignores
  /// this.
  constexpr options& portable(bool v) {
    portable_ = v;
    return *this;
  }
  constexpr bool portable() const { return portable_; }

  /// Segment capacity = 2^seg_order slots (unbounded FAA backend).
  constexpr options& seg_order(unsigned v) {
    seg_order_ = v;
    return *this;
  }
  constexpr unsigned seg_order() const { return seg_order_; }

  /// SMR amnesty: retired nodes a thread may park before it must run
  /// a reclamation scan (backends with dynamic memory: MSQ, FAA,
  /// LCRQ). 0 = auto, the MAX_GARBAGE(n) = 2n shape over max_threads.
  /// Total parked garbage is bounded by max_threads x this value.
  constexpr options& retire_threshold(unsigned v) {
    retire_threshold_ = v;
    return *this;
  }
  constexpr unsigned retire_threshold() const { return retire_threshold_; }

  /// Shard count for wcq::sharded (must be a power of two; its
  /// constructor throws std::invalid_argument otherwise). 0 = auto:
  /// a machine-derived count (see wcq/sharded.hpp). Total capacity
  /// stays 2^order — it is split across the shards, so one options
  /// value sizes a sharded and an unsharded queue identically.
  constexpr options& shards(unsigned v) {
    shards_ = v;
    return *this;
  }
  constexpr unsigned shards() const { return shards_; }

  /// Shard-picking policy for wcq::sharded (ignored by plain
  /// backends). See wcq::shard_policy.
  using shard_policy_t = wcq::shard_policy;
  constexpr options& shard_policy(shard_policy_t v) {
    shard_policy_ = v;
    return *this;
  }
  constexpr shard_policy_t shard_policy() const { return shard_policy_; }

  /// Largest batch one try_push_n/try_pop_n call amortizes over a
  /// single shard selection; longer spans are processed in chunks of
  /// this size (re-picking between chunks). Must be >= 1 — the
  /// sharded constructor throws std::invalid_argument on 0.
  constexpr options& batch_limit(unsigned v) {
    batch_limit_ = v;
    return *this;
  }
  constexpr unsigned batch_limit() const { return batch_limit_; }

 private:
  unsigned order_ = 16;
  unsigned max_threads_ = 128;
  unsigned enqueue_patience_ = 16;
  unsigned dequeue_patience_ = 64;
  unsigned help_delay_ = 16;
  bool remap_ = true;
  bool portable_ = false;
  unsigned seg_order_ = 10;
  unsigned retire_threshold_ = 0;
  unsigned shards_ = 0;  // 0 = auto
  shard_policy_t shard_policy_ = shard_policy_t::round_robin;
  unsigned batch_limit_ = 64;
};

}  // namespace wcq
