// LCRQ (Morrison & Afek, PPoPP 2013): linked concurrent ring queues —
// the paper's fastest unbounded baseline and the design wCQ's Figure
// 10 contrasts on memory. Each CRQ is a closed ring of
// {value, safe|index} cells mutated by double-width CAS (the same
// cmpxchg16b / portable-__atomic machinery as the wCQ note protocol,
// detail::cas2); enqueue FAAs the ring tail for a ticket and CAS2es
// its cell from EMPTY, dequeue FAAs head and either harvests the
// value or poisons the cell for that round. A ring that fills (or
// starves) is *closed* — bit 63 of its tail — and a fresh ring is
// linked Michael-Scott style; drained rings are retired through the
// shared SMR layer under a hazard pointer, so the churn Figure 10
// shows is in-flight rings only, not a leak.
//
// Value ~0 is reserved as the cell-EMPTY sentinel and refused by
// try_push (boxed slot_codec callers are unaffected: pointers never
// collide with it).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/smr.hpp"

namespace wcq {

class LcrqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned order = 16;  // 2^order cells per ring (paper §6 default)
    unsigned max_threads = 128;
    unsigned retire_threshold = 0;  // 0 = auto (see wcq/smr.hpp)
  };

  using Handle = RegistryHandle<LcrqQueue>;

  static constexpr std::uint64_t kEmptyVal = ~std::uint64_t{0};

  explicit LcrqQueue(const Config& cfg)
      : order_(check_order(cfg.order)),
        ring_size_(std::uint64_t{1} << order_),
        slots_(cfg.max_threads ? cfg.max_threads : 1),
        smr_(slots_.capacity(), cfg.retire_threshold) {
    Crq* c = new_crq();
    head_.store(c, std::memory_order_relaxed);
    tail_.store(c, std::memory_order_relaxed);
  }

  explicit LcrqQueue(const options& opt)
      : LcrqQueue(
            Config{opt.order(), opt.max_threads(), opt.retire_threshold()}) {}

  ~LcrqQueue() {
    assert(slots_.live() == 0 &&
           "lcrq: a Handle is outliving its queue (use-after-free ahead)");
    // head_ anchors every live ring; retired rings are freed by the
    // domain's destructor.
    Crq* c = head_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      Crq* next = c->next.load(std::memory_order_relaxed);
      free_crq(this, c);
      c = next;
    }
  }

  LcrqQueue(const LcrqQueue&) = delete;
  LcrqQueue& operator=(const LcrqQueue&) = delete;

  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, slot);
  }

  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "lcrq: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // Succeeds for every storable value (unbounded: a closed ring is
  // replaced by a fresh one). The all-ones pattern is the EMPTY cell
  // sentinel and is refused (false) rather than silently lost.
  bool try_push(std::uint64_t v, Handle& h) {
    if (v == kEmptyVal) return false;
    const unsigned slot = h.slot();
    for (;;) {
      // The hazard keeps the ring alive across its FAA/CAS2s even if
      // dequeuers drain and retire it meanwhile.
      Crq* c = smr_.protect(slot, 0, tail_);
      if (Crq* next = c->next.load(std::memory_order_acquire)) {
        // Someone already appended; help swing tail and retry there.
        tail_.compare_exchange_strong(c, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      if (crq_enqueue(c, v)) return true;
      // Ring closed. Seed a fresh ring with the value (an enqueue on
      // an empty unclosed ring cannot fail) and link it.
      Crq* fresh = new_crq();
      const bool seeded = crq_enqueue(fresh, v);
      assert(seeded && "enqueue on a fresh ring cannot fail");
      (void)seeded;
      Crq* expected = nullptr;
      if (c->next.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        tail_.compare_exchange_strong(c, fresh, std::memory_order_release,
                                      std::memory_order_relaxed);
        return true;
      }
      free_crq(this, fresh);  // lost the append race; nobody saw ours
    }
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) {
    const unsigned slot = h.slot();
    for (;;) {
      Crq* c = smr_.protect(slot, 0, head_);
      if (crq_dequeue(c, v)) return true;
      Crq* next = c->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;  // no successor: truly empty
      // A successor exists, so the ring is closed — but an enqueue may
      // have slipped in between our empty observation and the close.
      // One more dequeue is definitive (Morrison & Afek §3.2).
      if (crq_dequeue(c, v)) return true;
      Crq* expected = c;
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        smr_.retire(slot, c, &free_crq_erased, this);
      }
    }
  }

  smr::Stats smr_stats() const { return smr_.stats(); }

  unsigned ring_order() const { return order_; }

 private:
  friend class RegistryHandle<LcrqQueue>;

  static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kIdxMask = kClosedBit - 1;
  // Failed enqueue transitions tolerated before closing the ring: the
  // anti-starvation close of §3.1 (the full-ring test handles the
  // common case; this bounds livelock on repeatedly poisoned cells).
  static constexpr unsigned kStarvationLimit = 4096;

  void release_slot(unsigned slot) {
    smr_.quiesce(slot);
    slots_.release(slot);
  }

  // A cell is a {val, sidx} pair mutated together by CAS2 and read as
  // two plain 64-bit atomics — the same mixed-width aliasing contract
  // as the noted ring's entries (see detail::Pair). sidx packs
  // [safe:1 | idx:63].
  struct alignas(16) Cell {
    std::atomic<std::uint64_t> val;
    std::atomic<std::uint64_t> sidx;
  };
  static_assert(sizeof(Cell) == sizeof(detail::Pair));
  static_assert(offsetof(Cell, val) == offsetof(detail::Pair, word) &&
                offsetof(Cell, sidx) == offsetof(detail::Pair, note));

  struct Crq {
    alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head{0};
    // Bit 63 is the closed flag; low bits are the enqueue ticket.
    alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail{0};
    alignas(detail::kNoFalseSharing) std::atomic<Crq*> next{nullptr};
    // ring_size_ cells live in trailing storage (see cells()).
    Cell* cells() { return reinterpret_cast<Cell*>(this + 1); }
  };

  static constexpr std::uint64_t pack_sidx(bool safe, std::uint64_t idx) {
    return (static_cast<std::uint64_t>(safe) << 63) | (idx & kIdxMask);
  }
  static constexpr bool sidx_safe(std::uint64_t s) { return (s >> 63) != 0; }
  static constexpr std::uint64_t sidx_idx(std::uint64_t s) {
    return s & kIdxMask;
  }

  static bool cell_cas(Cell* cell, detail::Pair expected,
                       detail::Pair desired) {
    return detail::cas2(reinterpret_cast<detail::Pair*>(cell), &expected,
                        desired);
  }

  // Enqueue into one ring. False iff the ring is (or became) closed.
  bool crq_enqueue(Crq* c, std::uint64_t v) {
    unsigned tries = 0;
    for (;;) {
      const std::uint64_t traw =
          c->tail.fetch_add(1, std::memory_order_seq_cst);
      if (traw & kClosedBit) return false;
      const std::uint64_t t = traw;
      Cell* cell = &c->cells()[t & (ring_size_ - 1)];
      const std::uint64_t sidx = cell->sidx.load(std::memory_order_acquire);
      const std::uint64_t val = cell->val.load(std::memory_order_acquire);
      const std::uint64_t idx = sidx_idx(sidx);
      // The cell is usable for ticket t when it is empty, still on an
      // earlier round (idx <= t), and either safe or provably not
      // awaited by a dequeuer (head <= t).
      if (val == kEmptyVal && idx <= t &&
          (sidx_safe(sidx) ||
           c->head.load(std::memory_order_seq_cst) <= t)) {
        if (cell_cas(cell, {kEmptyVal, sidx}, {v, pack_sidx(true, t)})) {
          return true;
        }
      }
      // Transition failed. Close when full or starving, else re-FAA.
      const std::uint64_t h = c->head.load(std::memory_order_seq_cst);
      if (static_cast<std::int64_t>(t - h) >=
              static_cast<std::int64_t>(ring_size_) ||
          ++tries >= kStarvationLimit) {
        c->tail.fetch_or(kClosedBit, std::memory_order_seq_cst);
        return false;
      }
    }
  }

  // Dequeue from one ring. False iff the ring is observed empty
  // (head caught up with tail; tail repaired via fix_state).
  bool crq_dequeue(Crq* c, std::uint64_t* out) {
    for (;;) {
      const std::uint64_t h = c->head.fetch_add(1, std::memory_order_seq_cst);
      Cell* cell = &c->cells()[h & (ring_size_ - 1)];
      for (;;) {
        const std::uint64_t sidx = cell->sidx.load(std::memory_order_acquire);
        const std::uint64_t val = cell->val.load(std::memory_order_acquire);
        // Re-read to pin a consistent {val, sidx} snapshot (the CAS2
        // writers change both together; sidx changes on every round).
        if (cell->sidx.load(std::memory_order_acquire) != sidx) continue;
        const std::uint64_t idx = sidx_idx(sidx);
        const bool safe = sidx_safe(sidx);
        if (idx > h) break;  // cell already advanced past our round
        if (val != kEmptyVal) {
          if (idx == h) {
            // Our round's value: consume, advancing the cell a round.
            if (cell_cas(cell, {val, sidx},
                         {kEmptyVal, pack_sidx(safe, h + ring_size_)})) {
              *out = val;
              return true;
            }
          } else {
            // Value from an older round: mark the cell unsafe so its
            // enqueuer's round cannot be served out of order.
            if (cell_cas(cell, {val, sidx}, {val, pack_sidx(false, idx)})) {
              break;
            }
          }
        } else {
          // Empty cell: poison our round so a late enqueuer with
          // ticket h fails its CAS2 and retries elsewhere.
          if (cell_cas(cell, {kEmptyVal, sidx},
                       {kEmptyVal, pack_sidx(safe, h + ring_size_)})) {
            break;
          }
        }
      }
      const std::uint64_t t =
          c->tail.load(std::memory_order_seq_cst) & kIdxMask;
      if (t <= h + 1) {
        fix_state(c);
        return false;
      }
    }
  }

  // Head can overrun tail when dequeuers race an emptying ring; CAS
  // tail up to head (keeping the closed bit) so enqueue tickets do
  // not land on already-poisoned rounds forever.
  static void fix_state(Crq* c) {
    for (;;) {
      std::uint64_t traw = c->tail.load(std::memory_order_seq_cst);
      const std::uint64_t h = c->head.load(std::memory_order_seq_cst);
      if (sidx_idx(traw) >= h) return;  // consistent (or closed-huge)
      if (c->tail.compare_exchange_strong(traw, (traw & kClosedBit) | h,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
        return;
      }
    }
  }

  static unsigned check_order(unsigned order) {
    if (order > 30) {
      throw std::invalid_argument("lcrq: ring order exceeds 30");
    }
    return order;
  }

  std::size_t crq_bytes() const {
    return sizeof(Crq) + ring_size_ * sizeof(Cell);
  }

  Crq* new_crq() {
    void* raw = mem::alloc(crq_bytes());
    Crq* c = new (raw) Crq();
    Cell* cells = c->cells();
    for (std::uint64_t i = 0; i < ring_size_; ++i) {
      new (&cells[i].val) std::atomic<std::uint64_t>(kEmptyVal);
      new (&cells[i].sidx) std::atomic<std::uint64_t>(pack_sidx(true, i));
    }
    return c;
  }

  static void free_crq(LcrqQueue* q, Crq* c) {
    c->~Crq();
    mem::free(c, q->crq_bytes());
  }

  static void free_crq_erased(void* p, void* ctx) {
    free_crq(static_cast<LcrqQueue*>(ctx), static_cast<Crq*>(p));
  }

  const unsigned order_;
  const std::uint64_t ring_size_;

  alignas(detail::kNoFalseSharing) std::atomic<Crq*> head_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Crq*> tail_{nullptr};
  SlotRegistry slots_;
  smr::Domain smr_;
};

}  // namespace wcq
