// Empty-detection policy — the layer that separates SCQ-family rings
// from the naive circular queue.
//
// SCQ's contribution (DISC 2019, §2) is ScqThreshold: dequeuers spend
// a shared budget of 3n−1 failed positions; once it is gone, "empty"
// is definitive in O(1) and nobody scans a dead ring. NCQ predates the
// idea: its only exit is comparing Head against Tail, which a storm of
// CAS-retrying peers can starve — the livelock the paper's strawman
// exists to demonstrate. NoThreshold encodes that absence so NcqRing
// composes the same layer stack with the policy slot deliberately
// empty.
#pragma once

#include <atomic>
#include <cstdint>

#include "wcq/ring_math.hpp"

namespace wcq::ring {

/// The SCQ threshold: armed to ring_size + n − 1 (= 3n−1) by every
/// successful enqueue, spent by every dequeue ticket that yields no
/// value. Spent-below-zero is a definitive "queue empty" certificate:
/// at most 3n−1 fruitless positions can exist while a value is live.
class ScqThreshold {
 public:
  explicit ScqThreshold(const Geometry& g)
      : init_(static_cast<std::int64_t>(g.ring_size() + g.capacity() - 1)) {}

  /// Definitive-empty check: the budget ran out.
  bool spent() const { return v_.load(std::memory_order_seq_cst) < 0; }

  /// Re-arm after a successful enqueue (a value is live again). The
  /// load-then-store shape keeps the hot path read-only when the
  /// threshold is already armed.
  void arm() {
    if (v_.load(std::memory_order_seq_cst) != init_) {
      v_.store(init_, std::memory_order_seq_cst);
    }
  }

  /// Account one fruitless dequeue position; true when the budget is
  /// now gone (caller returns definitive empty).
  bool spend() { return v_.fetch_sub(1, std::memory_order_seq_cst) <= 0; }

 private:
  const std::int64_t init_;
  // Starts spent: a fresh ring is empty until the first enqueue arms it.
  std::atomic<std::int64_t> v_{-1};
};

/// NCQ's policy slot: no budget, no definitive empty. Dequeuers fall
/// back to the Head-vs-Tail comparison, which is exactly the
/// livelock-prone detection the SCQ paper's strawman demonstrates.
struct NoThreshold {
  constexpr explicit NoThreshold(const Geometry&) {}
  static constexpr bool spent() { return false; }
  static constexpr void arm() {}
  static constexpr bool spend() { return false; }
};

}  // namespace wcq::ring
