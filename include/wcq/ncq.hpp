// NCQ — the naive circular queue, the SCQ paper's strawman (Nikolaev,
// DISC 2019, Alg. 1) and the baseline of wCQ's Figure 11 family plots.
// Same layer stack as the kernel (Geometry arithmetic, Remap, plain
// 64-bit entries) with two deliberate regressions the later designs
// exist to fix:
//
//  - Head/Tail advance by CAS, not FAA: an enqueuer installs its entry
//    first and then CAS-bumps Tail (losers that see the installed
//    entry help-bump). Under contention every op is a CAS storm on the
//    same two counters — the livelock the threshold-era designs cite.
//  - No threshold (ring::NoThreshold): "empty" is the bare Tail <= Head
//    comparison, and a dequeuer that keeps losing its Head CAS can spin
//    indefinitely even on a near-empty queue. Entries are never cleared
//    on dequeue — consumption is tracked by Head position alone.
//
// The queue is the usual two-ring construction (aq free indices, fq
// filled), which also supplies the invariant that makes the naive ring
// sound here: at most `capacity` indices are live per ring, so an
// install at Tail can never overwrite an unconsumed value (Tail - Head
// <= capacity < ring_size). The ring keeps the family's 2n geometry
// for like-for-like memory and remap behaviour in the figure benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/ring_entry.hpp"
#include "wcq/ring_math.hpp"
#include "wcq/ring_policy.hpp"

namespace wcq {

class NcqRing {
 public:
  enum Result : int {
    kOk = 0,
    kEmpty = 1,
    kContended = 2,
  };

  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  NcqRing(unsigned order, bool remap)
      : geo_(order),
        remap_(remap ? ring::Remap::cache(geo_, kLineBits)
                     : ring::Remap::identity(geo_)),
        threshold_(geo_) {
    entries_ = static_cast<ring::PlainEntry*>(
        mem::alloc(geo_.ring_size() * sizeof(ring::PlainEntry)));
    for (std::uint64_t j = 0; j < geo_.ring_size(); ++j) {
      entries_[j].word.store(geo_.pack(0, true, geo_.bot()),
                             std::memory_order_relaxed);
    }
    head_.store(geo_.ring_size(), std::memory_order_relaxed);
    tail_.store(geo_.ring_size(), std::memory_order_relaxed);
  }

  ~NcqRing() {
    mem::free(entries_, geo_.ring_size() * sizeof(ring::PlainEntry));
  }

  NcqRing(const NcqRing&) = delete;
  NcqRing& operator=(const NcqRing&) = delete;

  std::uint64_t capacity() const { return geo_.capacity(); }

  // Install an index at Tail. No ticket is reserved up front: everyone
  // races a CAS on the entry at the *current* Tail position, and Tail
  // moves only after the install is visible.
  Result enqueue_idx(std::uint64_t eidx, std::uint64_t max_iters) {
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      std::uint64_t t = tail_.load(std::memory_order_seq_cst);
      const std::uint64_t tcycle = geo_.cycle_of_pos(t);
      const std::uint64_t j = remap_.map(t);
      const std::uint64_t e = entries_[j].word.load(std::memory_order_acquire);
      const std::uint64_t ecycle = geo_.cycle_of_entry(e);
      if (ecycle == tcycle) {
        // Position t is already installed; help bump Tail and retry.
        tail_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst);
        continue;
      }
      if (ecycle + 1 != tcycle) continue;  // stale Tail/entry pair
      std::uint64_t expected = e;
      if (entries_[j].word.compare_exchange_strong(
              expected, geo_.pack(tcycle, true, eidx),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        tail_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst);
        threshold_.arm();  // NoThreshold: compiles to nothing
        return kOk;
      }
    }
    return kContended;
  }

  // Claim the value at Head by CAS-advancing Head past it. The entry
  // is left in place: Head moving past a position *is* its
  // consumption. kEmpty is the naive Tail <= Head observation — there
  // is no definitive-empty budget to spend (threshold_.spent() is
  // constant false), which is precisely NCQ's livelock exposure.
  Result dequeue_idx(std::uint64_t* out, std::uint64_t max_iters) {
    if (threshold_.spent()) return kEmpty;  // never: documents the slot
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      std::uint64_t h = head_.load(std::memory_order_seq_cst);
      const std::uint64_t hcycle = geo_.cycle_of_pos(h);
      const std::uint64_t j = remap_.map(h);
      const std::uint64_t e = entries_[j].word.load(std::memory_order_acquire);
      if (geo_.cycle_of_entry(e) == hcycle) {
        // Position h holds this cycle's value. Whoever wins the Head
        // CAS owns it; the entry cannot change again until Head has
        // passed it (the next install at j needs Tail >= h + ring_size
        // which needs Head > h), so the pre-CAS read is the value.
        if (head_.compare_exchange_strong(h, h + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
          *out = geo_.idx_of_entry(e);
          return kOk;
        }
        continue;
      }
      if (tail_.load(std::memory_order_seq_cst) <= h) return kEmpty;
      // Entry not yet at our cycle but Tail is ahead: an install or a
      // Tail bump is in flight; re-read.
    }
    return kContended;
  }

 private:
  static constexpr unsigned kLineBits =
      detail::log2_pow2(detail::kCacheLine / sizeof(ring::PlainEntry));

  const ring::Geometry geo_;
  const ring::Remap remap_;
  // The empty (absent) policy slot — see ring_policy.hpp.
  [[no_unique_address]] ring::NoThreshold threshold_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) ring::PlainEntry* entries_ = nullptr;
};

// NCQ as a bounded MPMC queue of 64-bit values: the same two-ring
// construction as ScqQueue, over naive rings.
class NcqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned order = 16;  // capacity = 2^order values
    bool remap = true;
  };

  using Handle = TrivialHandle;

  explicit NcqQueue(const Config& cfg)
      : n_(std::uint64_t{1} << cfg.order),
        aq_(cfg.order, cfg.remap),
        fq_(cfg.order, cfg.remap) {
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, NcqRing::kUnbounded);
    }
  }

  explicit NcqQueue(const options& opt)
      : NcqQueue(Config{opt.order(), opt.remap()}) {}

  ~NcqQueue() { mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>)); }

  NcqQueue(const NcqQueue&) = delete;
  NcqQueue& operator=(const NcqQueue&) = delete;

  std::uint64_t capacity() const { return n_; }

  Handle get_handle() { return Handle{}; }
  std::optional<Handle> try_get_handle() { return Handle{}; }

  // False iff the queue is full.
  bool try_push(std::uint64_t v, Handle&) {
    std::uint64_t idx = 0;
    if (aq_.dequeue_idx(&idx, NcqRing::kUnbounded) == NcqRing::kEmpty) {
      return false;  // no free slots: full
    }
    data_[idx].store(v, std::memory_order_relaxed);
    fq_.enqueue_idx(idx, NcqRing::kUnbounded);
    return true;
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle&) {
    std::uint64_t idx = 0;
    if (fq_.dequeue_idx(&idx, NcqRing::kUnbounded) == NcqRing::kEmpty) {
      return false;
    }
    *v = data_[idx].load(std::memory_order_relaxed);
    aq_.enqueue_idx(idx, NcqRing::kUnbounded);
    return true;
  }

 private:
  const std::uint64_t n_;
  NcqRing aq_;  // free slots (starts full)
  NcqRing fq_;  // filled slots (starts empty)
  std::atomic<std::uint64_t>* data_ = nullptr;
};

}  // namespace wcq
