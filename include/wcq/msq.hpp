// Michael-Scott queue (PODC 1996): the classic CAS-based linked-list
// MPMC queue, the "MSQ" baseline series. Nodes are never reused during
// a run — dequeued nodes go onto a retired stack freed only by the
// destructor — which sidesteps ABA without tagged pointers or hazard
// pointers at the cost of unbounded memory (visible in Figure 10,
// which is the point of the comparison).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <optional>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"

namespace wcq {

class MsqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {};

  using Handle = TrivialHandle;

  explicit MsqQueue(const Config&) {
    Node* dummy = new_node(0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  explicit MsqQueue(const options&) : MsqQueue(Config{}) {}

  ~MsqQueue() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      free_node(n);
      n = next;
    }
    n = retired_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      free_node(n);
      n = next;
    }
  }

  MsqQueue(const MsqQueue&) = delete;
  MsqQueue& operator=(const MsqQueue&) = delete;

  Handle get_handle() { return Handle{}; }
  std::optional<Handle> try_get_handle() { return Handle{}; }

  // Always succeeds (unbounded).
  bool try_push(std::uint64_t v, Handle&) { return push_impl(v); }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle&) { return pop_impl(v); }

 private:
  bool push_impl(std::uint64_t v) {
    Node* node = new_node(v);
    for (;;) {
      Node* t = tail_.load(std::memory_order_acquire);
      Node* next = t->next.load(std::memory_order_acquire);
      if (t != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Node* expected = nullptr;
        if (t->next.compare_exchange_weak(expected, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
          tail_.compare_exchange_strong(t, node, std::memory_order_release,
                                        std::memory_order_relaxed);
          return true;
        }
      } else {
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);
      }
    }
  }

  bool pop_impl(std::uint64_t* v) {
    for (;;) {
      Node* h = head_.load(std::memory_order_acquire);
      Node* t = tail_.load(std::memory_order_acquire);
      Node* next = h->next.load(std::memory_order_acquire);
      if (h != head_.load(std::memory_order_acquire)) continue;
      if (h == t) {
        if (next == nullptr) return false;
        // Tail is lagging behind a half-finished enqueue; push it.
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t value = next->value;
      if (head_.compare_exchange_weak(h, next, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        retire(h);
        *v = value;
        return true;
      }
    }
  }

  struct alignas(detail::kCacheLine) Node {
    std::atomic<Node*> next{nullptr};
    std::uint64_t value = 0;
  };

  Node* new_node(std::uint64_t v) {
    Node* n = new (mem::alloc(sizeof(Node), alignof(Node))) Node();
    n->value = v;
    return n;
  }

  void free_node(Node* n) {
    n->~Node();
    mem::free(n, sizeof(Node), alignof(Node));
  }

  // Unlinked heads may still be examined by stalled dequeuers (their
  // head re-check then fails), so reusing `next` as the retired-stack
  // link is safe: the stale pointer is read but never followed.
  void retire(Node* n) {
    Node* top = retired_.load(std::memory_order_relaxed);
    do {
      n->next.store(top, std::memory_order_relaxed);
    } while (!retired_.compare_exchange_weak(top, n,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  alignas(detail::kNoFalseSharing) std::atomic<Node*> head_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Node*> tail_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Node*> retired_{nullptr};
};

}  // namespace wcq
