// Michael-Scott queue (PODC 1996): the classic CAS-based linked-list
// MPMC queue, the "MSQ" baseline series. Dequeued nodes are retired
// through the shared SMR layer (wcq/smr.hpp) under the two hazard
// pointers of Michael's 2004 scheme — hp0 on the node in hand, hp1 on
// its successor — so the footprint Figure 10 reports is the
// algorithm's true in-flight garbage (bounded by the domain's
// amnesty), not a leak-until-destructor artifact.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/smr.hpp"

namespace wcq {

class MsqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned max_threads = 128;
    unsigned retire_threshold = 0;  // 0 = auto (see wcq/smr.hpp)
  };

  using Handle = RegistryHandle<MsqQueue>;

  explicit MsqQueue(const Config& cfg)
      : slots_(cfg.max_threads ? cfg.max_threads : 1),
        smr_(slots_.capacity(), cfg.retire_threshold) {
    Node* dummy = new_node(0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  explicit MsqQueue(const options& opt)
      : MsqQueue(Config{opt.max_threads(), opt.retire_threshold()}) {}

  ~MsqQueue() {
    assert(slots_.live() == 0 &&
           "msq: a Handle is outliving its queue (use-after-free ahead)");
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      free_node(this, n);
      n = next;
    }
    // Retired-but-unreclaimed nodes are freed by the domain's dtor.
  }

  MsqQueue(const MsqQueue&) = delete;
  MsqQueue& operator=(const MsqQueue&) = delete;

  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, slot);
  }

  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "msq: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // Always succeeds (unbounded).
  bool try_push(std::uint64_t v, Handle& h) { return push_impl(v, h.slot()); }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) { return pop_impl(v, h.slot()); }

  smr::Stats smr_stats() const { return smr_.stats(); }

 private:
  friend class RegistryHandle<MsqQueue>;

  void release_slot(unsigned slot) {
    smr_.quiesce(slot);
    slots_.release(slot);
  }

  bool push_impl(std::uint64_t v, unsigned slot) {
    Node* node = new_node(v);
    for (;;) {
      // hp0 keeps `t` alive across the next-load and the two CASes; a
      // concurrent dequeuer may retire it but the domain cannot free
      // it until our hazard moves on.
      Node* t = smr_.protect(slot, 0, tail_);
      Node* next = t->next.load(std::memory_order_acquire);
      if (t != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Node* expected = nullptr;
        if (t->next.compare_exchange_weak(expected, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
          tail_.compare_exchange_strong(t, node, std::memory_order_release,
                                        std::memory_order_relaxed);
          return true;
        }
      } else {
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);
      }
    }
  }

  bool pop_impl(std::uint64_t* v, unsigned slot) {
    for (;;) {
      Node* h = smr_.protect(slot, 0, head_);
      Node* t = tail_.load(std::memory_order_acquire);
      Node* next = smr_.protect(slot, 1, h->next);
      if (h != head_.load(std::memory_order_acquire)) continue;
      if (h == t) {
        if (next == nullptr) return false;
        // Tail is lagging behind a half-finished enqueue; push it.
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      // Read before unlinking (Michael 2004 D10-D11): hp1 guarantees
      // `next` outlives the read even if it is dequeued right after.
      const std::uint64_t value = next->value;
      if (head_.compare_exchange_weak(h, next, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        smr_.retire(slot, h, &free_node_erased, this);
        *v = value;
        return true;
      }
    }
  }

  struct alignas(detail::kCacheLine) Node {
    std::atomic<Node*> next{nullptr};
    std::uint64_t value = 0;
  };

  Node* new_node(std::uint64_t v) {
    Node* n = new (mem::alloc(sizeof(Node), alignof(Node))) Node();
    n->value = v;
    return n;
  }

  static void free_node(MsqQueue*, Node* n) {
    n->~Node();
    mem::free(n, sizeof(Node), alignof(Node));
  }

  static void free_node_erased(void* p, void* ctx) {
    free_node(static_cast<MsqQueue*>(ctx), static_cast<Node*>(p));
  }

  alignas(detail::kNoFalseSharing) std::atomic<Node*> head_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Node*> tail_{nullptr};
  SlotRegistry slots_;
  smr::Domain smr_;
};

}  // namespace wcq
