/// \file
/// `wcq::queue<T, Backend>` — the typed public face of the library.
///
/// The paper presents wCQ as an index ring that "becomes" a general
/// queue by pairing aq/fq rings with a data array (§2.2, §5); the
/// backends here already store 64-bit slots, so the only missing piece
/// is a codec between T and a slot. `slot_codec<T>` stores any trivially
/// copyable T of at most 8 bytes directly in the slot (zero overhead —
/// for T = std::uint64_t the encode/decode compile away entirely) and
/// falls back to pointer indirection for anything larger, boxing the
/// value through the counting allocator so Figure 10's memory
/// accounting still sees it.
///
/// Handles are RAII: get_handle() registers the calling thread with
/// the backend (a real ThreadRec slot for wCQ, nothing for
/// SCQ/FAA/MSQ) and destruction recycles the registration, so
/// max_threads bounds concurrent participants rather than lifetime
/// thread count.
///
/// Caveat: a backend may reserve slot bit patterns for its own
/// protocol (FaaQueue reserves the top two as EMPTY/TAKEN sentinels,
/// LcrqQueue the all-ones EMPTY pattern; wCQ/SCQ/MSQ reserve none). An
/// inline-encoded T whose bytes collide with a reserved pattern (e.g.
/// std::int64_t{-1} over FaaQueue) is refused by that backend's
/// try_push — use a boxed slot_codec specialization over such backends
/// when T needs the full 64-bit space, since pointers never collide
/// with the sentinels.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>
#include <utility>

#include "wcq/concepts.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/wcq.hpp"

namespace wcq {

/// True when T can live directly inside a 64-bit data slot.
template <typename T>
inline constexpr bool fits_in_slot_v =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t) &&
    std::is_default_constructible_v<T>;

/// `slot_codec<T>` maps T to and from a uint64_t slot. Specializable
/// for user types that have a smarter packing than the defaults (e.g.
/// tagged 48-bit pointers). `kBoxed` tells the facade whether a slot
/// owns an allocation that must be reclaimed on failed pushes / queue
/// teardown.
template <typename T, bool Inline = fits_in_slot_v<T>>
struct slot_codec;

/// Inline storage: bitwise copy into the low bytes of the slot.
template <typename T>
struct slot_codec<T, true> {
  static constexpr bool kBoxed = false;

  static std::uint64_t encode(const T& v) {
    std::uint64_t slot = 0;
    std::memcpy(&slot, &v, sizeof(T));
    return slot;
  }

  static T decode(std::uint64_t slot) {
    T v{};
    std::memcpy(&v, &slot, sizeof(T));
    return v;
  }

  static void drop(std::uint64_t) {}
};

/// Boxed storage: the slot carries a pointer to a heap copy. Goes
/// through mem::alloc so boxed traffic shows up in the Figure 10
/// memory accounting like every other queue allocation.
template <typename T>
struct slot_codec<T, false> {
  static constexpr bool kBoxed = true;

  static std::uint64_t encode(T v) {
    void* raw = mem::alloc(sizeof(T), alignof(T));
    T* p = new (raw) T(std::move(v));
    return reinterpret_cast<std::uint64_t>(p);
  }

  static T decode(std::uint64_t slot) {
    T* p = reinterpret_cast<T*>(slot);
    T v = std::move(*p);
    p->~T();
    mem::free(p, sizeof(T), alignof(T));
    return v;
  }

  static void drop(std::uint64_t slot) {
    T* p = reinterpret_cast<T*>(slot);
    p->~T();
    mem::free(p, sizeof(T), alignof(T));
  }
};

/// The typed MPMC queue facade over any concepts::Backend.
///
/// Move-only, options-constructible, used through per-thread RAII
/// handles. Every instantiation satisfies concepts::Queue, which is
/// the constraint all benches, tests, and workloads in this repo
/// program against.
template <typename T, typename Backend = WcqQueue>
class queue {
  static_assert(concepts::Backend<Backend>,
                "Backend must satisfy wcq::concepts::Backend "
                "(options ctor + Handle + try_push/try_pop over slots)");

 public:
  using value_type = T;
  using backend_type = Backend;
  using codec = slot_codec<T>;

  /// Slot scratch per batch round-trip (stack-allocated, 2 KiB).
  static constexpr std::size_t kBatchChunk = 256;

  /// RAII thread registration; move-only. One per participating
  /// thread, and it must not outlive the queue it came from (its
  /// destructor returns the registration to the queue).
  class handle {
   public:
    handle() = delete;
    handle(handle&&) = default;
    handle& operator=(handle&&) = default;
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;

   private:
    friend class queue;
    explicit handle(typename Backend::Handle h) : h_(std::move(h)) {}
    typename Backend::Handle h_;
  };

  explicit queue(const options& opt = options{}) : backend_(opt) {}

  /// Boxed values still sitting in the queue own heap memory; reclaim
  /// them before the backend tears down its rings.
  ~queue() {
    if constexpr (codec::kBoxed) {
      auto h = backend_.try_get_handle();
      if (h) {
        std::uint64_t slot = 0;
        while (backend_.try_pop(&slot, *h)) codec::drop(slot);
      }
    }
  }

  queue(const queue&) = delete;
  queue& operator=(const queue&) = delete;

  /// nullopt iff max_threads handles are simultaneously live.
  std::optional<handle> try_get_handle() {
    auto h = backend_.try_get_handle();
    if (!h) return std::nullopt;
    return handle(std::move(*h));
  }

  /// Throwing flavor for call sites where exhaustion is a logic
  /// error.
  handle get_handle() { return handle(backend_.get_handle()); }

  /// False iff the queue is full (bounded backends only).
  bool try_push(T v, handle& h) {
    const std::uint64_t slot = codec::encode(std::move(v));
    if (backend_.try_push(slot, h.h_)) return true;
    codec::drop(slot);
    return false;
  }

  /// nullopt iff the queue is empty.
  std::optional<T> try_pop(handle& h) {
    std::uint64_t slot = 0;
    if (!backend_.try_pop(&slot, h.h_)) return std::nullopt;
    return codec::decode(slot);
  }

  /// Batch enqueue: pushes vs[0..n) in order, stopping at the first
  /// refusal (queue full, or a backend-reserved sentinel pattern);
  /// returns how many were accepted. On backends with a native batch
  /// op (FaaQueue's single-FAA ticket burst) a whole chunk costs one
  /// ticket acquisition; elsewhere this is a plain loop — same
  /// semantics, no amortization. Boxed payloads work: each value is
  /// encoded through slot_codec and a refused value's box is dropped.
  std::size_t try_push_n(const T* vs, std::size_t n, handle& h) {
    std::size_t pushed = 0;
    if constexpr (requires(std::uint64_t* s) {
                    { backend_.try_push_n(s, n, h.h_) }
                      -> std::same_as<std::size_t>;
                  }) {
      std::uint64_t slots[kBatchChunk];
      while (pushed < n) {
        const std::size_t chunk = std::min(n - pushed, kBatchChunk);
        for (std::size_t i = 0; i < chunk; ++i) {
          slots[i] = codec::encode(vs[pushed + i]);
        }
        const std::size_t ok = backend_.try_push_n(slots, chunk, h.h_);
        for (std::size_t i = ok; i < chunk; ++i) codec::drop(slots[i]);
        pushed += ok;
        if (ok < chunk) break;
      }
    } else {
      for (; pushed < n; ++pushed) {
        const std::uint64_t slot = codec::encode(vs[pushed]);
        if (!backend_.try_push(slot, h.h_)) {
          codec::drop(slot);
          break;
        }
      }
    }
    return pushed;
  }

  /// Batch dequeue into out[0..n): returns how many values arrived
  /// (zero iff the queue is empty), in queue order. Backends with a
  /// native burst claim the whole run of tickets with one FAA.
  std::size_t try_pop_n(T* out, std::size_t n, handle& h) {
    std::size_t got = 0;
    if constexpr (requires(std::uint64_t* s) {
                    { backend_.try_pop_n(s, n, h.h_) }
                      -> std::same_as<std::size_t>;
                  }) {
      std::uint64_t slots[kBatchChunk];
      while (got < n) {
        const std::size_t chunk = std::min(n - got, kBatchChunk);
        const std::size_t ok = backend_.try_pop_n(slots, chunk, h.h_);
        for (std::size_t i = 0; i < ok; ++i) {
          out[got + i] = codec::decode(slots[i]);
        }
        got += ok;
        if (ok < chunk) break;
      }
    } else {
      for (; got < n; ++got) {
        std::uint64_t slot = 0;
        if (!backend_.try_pop(&slot, h.h_)) break;
        out[got] = codec::decode(slot);
      }
    }
    return got;
  }

  /// Backend extras surface only where they exist (wCQ stats, bounded
  /// capacity), so the facade adds no requirements beyond the
  /// concept.
  auto capacity() const
    requires requires(const Backend& b) { b.capacity(); }
  {
    return backend_.capacity();
  }

  /// Fast/slow-path operation and help counters (ObservableQueue
  /// backends).
  auto stats() const
    requires requires(const Backend& b) { b.stats(); }
  {
    return backend_.stats();
  }

  /// Backends that reclaim through the shared SMR layer (MSQ, FAA,
  /// LCRQ) expose the domain's retire/scan counters.
  auto smr_stats() const
    requires requires(const Backend& b) { b.smr_stats(); }
  {
    return backend_.smr_stats();
  }

  Backend& backend() { return backend_; }
  const Backend& backend() const { return backend_; }

 private:
  Backend backend_;
};

}  // namespace wcq
