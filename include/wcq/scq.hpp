// SCQ as a bounded MPMC queue of 64-bit values: the classic two-ring
// construction. `aq` holds free data slots, `fq` holds filled ones;
// enqueue moves a slot aq -> data -> fq, dequeue moves it back. The
// data array is synchronised by the rings' release/acquire entry CASes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/scq_ring.hpp"

namespace wcq {

class ScqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned order = 16;  // capacity = 2^order values
    bool remap = true;
    bool portable = false;
  };

  // SCQ keeps no per-thread state; the empty handle exists so every
  // backend has the same shape behind wcq::concepts::Backend.
  using Handle = TrivialHandle;

  explicit ScqQueue(const Config& cfg)
      : n_(std::uint64_t{1} << cfg.order),
        aq_(cfg.order, cfg.remap, cfg.portable),
        fq_(cfg.order, cfg.remap, cfg.portable) {
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, ScqRing::kUnbounded);
    }
  }

  explicit ScqQueue(const options& opt)
      : ScqQueue(Config{opt.order(), opt.remap(), opt.portable()}) {}

  ~ScqQueue() { mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>)); }

  ScqQueue(const ScqQueue&) = delete;
  ScqQueue& operator=(const ScqQueue&) = delete;

  std::uint64_t capacity() const { return n_; }

  Handle get_handle() { return Handle{}; }
  std::optional<Handle> try_get_handle() { return Handle{}; }

  // False iff the queue is full.
  bool try_push(std::uint64_t v, Handle&) { return push_impl(v); }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle&) { return pop_impl(v); }

 private:
  bool push_impl(std::uint64_t v) {
    std::uint64_t idx = 0;
    if (aq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;  // no free slots: full
    }
    data_[idx].store(v, std::memory_order_relaxed);
    fq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  bool pop_impl(std::uint64_t* v) {
    std::uint64_t idx = 0;
    if (fq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;
    }
    *v = data_[idx].load(std::memory_order_relaxed);
    aq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  const std::uint64_t n_;
  ScqRing aq_;  // free slots (starts full)
  ScqRing fq_;  // filled slots (starts empty)
  std::atomic<std::uint64_t>* data_ = nullptr;
};

}  // namespace wcq
