// SCQ as a bounded MPMC queue of 64-bit values: the classic two-ring
// construction. `aq` holds free data slots, `fq` holds filled ones;
// enqueue moves a slot aq -> data -> fq, dequeue moves it back. The
// data array is synchronised by the rings' release/acquire entry CASes.
#pragma once

#include <atomic>
#include <cstdint>

#include "wcq/mem.hpp"
#include "wcq/scq_ring.hpp"

namespace wcq {

class ScqQueue {
 public:
  struct Config {
    unsigned order = 16;  // capacity = 2^order values
    bool remap = true;
    bool portable = false;
  };

  explicit ScqQueue(const Config& cfg)
      : n_(std::uint64_t{1} << cfg.order),
        aq_(cfg.order, cfg.remap, cfg.portable),
        fq_(cfg.order, cfg.remap, cfg.portable) {
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, ScqRing::kUnbounded);
    }
  }

  ~ScqQueue() { mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>)); }

  ScqQueue(const ScqQueue&) = delete;
  ScqQueue& operator=(const ScqQueue&) = delete;

  std::uint64_t capacity() const { return n_; }

  // False iff the queue is full.
  bool enqueue(std::uint64_t v) {
    std::uint64_t idx = 0;
    if (aq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;  // no free slots: full
    }
    data_[idx].store(v, std::memory_order_relaxed);
    fq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  // False iff the queue is empty.
  bool dequeue(std::uint64_t* v) {
    std::uint64_t idx = 0;
    if (fq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;
    }
    *v = data_[idx].load(std::memory_order_relaxed);
    aq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

 private:
  const std::uint64_t n_;
  ScqRing aq_;  // free slots (starts full)
  ScqRing fq_;  // filled slots (starts empty)
  std::atomic<std::uint64_t>* data_ = nullptr;
};

}  // namespace wcq
