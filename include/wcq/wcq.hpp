// wCQ (Nikolaev & Ravindran, SPAA 2022): a wait-free bounded queue
// built on the SCQ ring. The fast path is SCQ with bounded patience
// (Section 6 uses 16 enqueue / 64 dequeue attempts); when patience
// runs out the operation is published as a RingRequest and completed
// through the paper's cooperative note protocol (Figures 4-7): every
// ring entry carries a note word next to it, claims and commits are
// double-width CASes, and *any* number of threads — the owner plus
// every helper that notices the request — advance the same pending
// operation concurrently. No thread ever takes exclusive ownership of
// a request; the commit is made unique by a single Pending->Phase2
// transition on the request's ctl word, not by an executor claim.
// Threads check one peer for a pending request every `help_delay` own
// operations ("to amortize the cost of help_threads", Section 3.1).
//
// A queue-level operation on the slow path is two ring-level requests
// driven in order by the owner (enqueue: aq-dequeue a free index,
// write data, fq-enqueue the index; dequeue mirrors it), each of which
// is helpable by everyone while it is pending.
//
// Compile with -DWCQ_ALL_SLOW to skip the fast path entirely, so
// every operation exercises the note protocol (test builds only).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/ring_noted.hpp"  // ScqRingT + the Noted helping layer

namespace wcq {

struct WcqStats {
  std::uint64_t fast_enqueues = 0;
  std::uint64_t slow_enqueues = 0;
  std::uint64_t fast_dequeues = 0;
  std::uint64_t slow_dequeues = 0;
  std::uint64_t helps = 0;
};

// Portable=true models the Section 4 build for LL/SC machines: every
// double-width CAS goes through the compiler's 128-bit __atomic path
// instead of the native cmpxchg16b — the algorithmic shape of the
// POWER version exercised on whatever ISA we run on.
template <bool Portable>
struct WcqTestAccess;

template <bool Portable>
class WcqQueueT {
 public:
  // Backend-internal configuration; the public surface is
  // wcq::options. Kept because the paper's knob names (MAX_PATIENCE,
  // HELP_DELAY) map onto it one-to-one.
  struct Config {
    // capacity = 2^order values. Note words carry ring indices in 21
    // aux bits, so order must be <= detail::kMaxNoteOrder (20); the
    // constructor throws std::invalid_argument beyond that.
    unsigned order = 16;
    // Note words index threads by a 9-bit slot, so at most
    // detail::kMaxNoteThreads (512) concurrent handles; the
    // constructor throws std::invalid_argument beyond that.
    unsigned max_threads = 128;
    unsigned enqueue_patience = 16;  // paper Section 6
    unsigned dequeue_patience = 64;
    unsigned help_delay = 16;
    bool remap = true;
  };

  class Handle;

  explicit WcqQueueT(const Config& cfg)
      : cfg_(sanitize(cfg)),
        n_(std::uint64_t{1} << cfg_.order),
        reqs_(static_cast<RingRequest*>(
            mem::alloc(cfg_.max_threads * sizeof(RingRequest)))),
        aq_(cfg_.order, cfg_.remap, Portable, reqs_, /*is_fq=*/false),
        fq_(cfg_.order, cfg_.remap, Portable, reqs_, /*is_fq=*/true),
        slots_(cfg_.max_threads) {
    for (unsigned i = 0; i < cfg_.max_threads; ++i) {
      new (&reqs_[i]) RingRequest();
    }
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, WcqRing::kUnbounded);
    }
    recs_ = static_cast<ThreadRec*>(
        mem::alloc(cfg_.max_threads * sizeof(ThreadRec)));
    for (unsigned i = 0; i < cfg_.max_threads; ++i) new (&recs_[i]) ThreadRec();
  }

  explicit WcqQueueT(const options& opt) : WcqQueueT(config_from(opt)) {}

  ~WcqQueueT() {
    // Lifetime contract: every handle must die before its queue — a
    // surviving handle's destructor would write into freed registry
    // memory. Catch the misuse here, where the guilty queue is known.
    assert(slots_.live() == 0 &&
           "wcq: a Handle is outliving its queue (use-after-free ahead)");
    for (unsigned i = 0; i < cfg_.max_threads; ++i) recs_[i].~ThreadRec();
    mem::free(recs_, cfg_.max_threads * sizeof(ThreadRec));
    mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>));
    for (unsigned i = 0; i < cfg_.max_threads; ++i) reqs_[i].~RingRequest();
    mem::free(reqs_, cfg_.max_threads * sizeof(RingRequest));
  }

  WcqQueueT(const WcqQueueT&) = delete;
  WcqQueueT& operator=(const WcqQueueT&) = delete;

  std::uint64_t capacity() const { return n_; }

  // Every participating thread needs its own handle (the paper's
  // per-thread state for helping). Handles are RAII: destruction
  // returns the ThreadRec slot to a free list, so max_threads bounds
  // *concurrent* participants, not lifetime thread count. A handle
  // must not outlive its queue (its destructor touches the queue's
  // registry); the queue's destructor asserts this in debug builds.
  //
  // nullopt iff max_threads handles are simultaneously live.
  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, &recs_[slot]);
  }

  // Throwing flavor for call sites where exhaustion is a logic error.
  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "wcq: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // False iff the queue is full.
  bool try_push(std::uint64_t v, Handle& h) {
    ThreadRec* rec = h.rec_;
    maybe_help(rec);
#if !defined(WCQ_ALL_SLOW)
    std::uint64_t idx = 0;
    const WcqRing::Result rc = aq_.dequeue_idx(&idx, cfg_.enqueue_patience);
    if (rc == WcqRing::kEmpty) {
      rec->fast_enq.fetch_add(1, std::memory_order_relaxed);
      return false;  // full: definitive, no slow path needed
    }
    if (rc == WcqRing::kOk) {
      data_[idx].store(v, std::memory_order_relaxed);
      if (fq_.enqueue_idx(idx, cfg_.enqueue_patience) == WcqRing::kOk) {
        rec->fast_enq.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // We already own the free index; only the second stage needs the
      // cooperative path (a ring enqueue cannot fail, only contend).
      rec->slow_enq.fetch_add(1, std::memory_order_relaxed);
      publish_ring_op(rec, /*fq_ring=*/true, /*deq=*/false, idx);
      complete_ring_op(rec, nullptr);
      return true;
    }
#endif
    rec->slow_enq.fetch_add(1, std::memory_order_relaxed);
    return slow_push(rec, v);
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) {
    ThreadRec* rec = h.rec_;
    maybe_help(rec);
#if !defined(WCQ_ALL_SLOW)
    std::uint64_t idx = 0;
    const WcqRing::Result rc = fq_.dequeue_idx(&idx, cfg_.dequeue_patience);
    if (rc == WcqRing::kEmpty) {
      rec->fast_deq.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (rc == WcqRing::kOk) {
      *v = data_[idx].load(std::memory_order_relaxed);
      if (aq_.enqueue_idx(idx, cfg_.enqueue_patience) != WcqRing::kOk) {
        publish_ring_op(rec, /*fq_ring=*/false, /*deq=*/false, idx);
        complete_ring_op(rec, nullptr);
      }
      rec->fast_deq.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
#endif
    rec->slow_deq.fetch_add(1, std::memory_order_relaxed);
    return slow_pop(rec, v);
  }

  WcqStats stats() const {
    WcqStats s;
    // Counters survive slot recycling (they are per-slot accumulators,
    // never reset on release), so this sum is consistent across any
    // amount of thread churn.
    const unsigned touched = slots_.high_water();
    for (unsigned i = 0; i < touched; ++i) {
      s.fast_enqueues += recs_[i].fast_enq.load(std::memory_order_relaxed);
      s.slow_enqueues += recs_[i].slow_enq.load(std::memory_order_relaxed);
      s.fast_dequeues += recs_[i].fast_deq.load(std::memory_order_relaxed);
      s.slow_dequeues += recs_[i].slow_deq.load(std::memory_order_relaxed);
      s.helps += recs_[i].helps.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  // Test-only backdoor (tests/test_helping.cpp, test_slow_path.cpp):
  // publishes a request without the owner driving it, so the
  // helper-completion path gets deterministic coverage.
  friend struct WcqTestAccess<Portable>;

  struct alignas(detail::kNoFalseSharing) ThreadRec {
    std::atomic<std::uint64_t> fast_enq{0};
    std::atomic<std::uint64_t> slow_enq{0};
    std::atomic<std::uint64_t> fast_deq{0};
    std::atomic<std::uint64_t> slow_deq{0};
    std::atomic<std::uint64_t> helps{0};
    // Owner-thread locals (never touched by helpers). seq is only
    // published through the RingRequest ctl word.
    std::uint64_t seq = 0;
    std::uint64_t op_count = 0;
    unsigned help_cursor = 0;
  };

  static Config config_from(const options& opt) {
    Config cfg;
    cfg.order = opt.order();
    cfg.max_threads = opt.max_threads();
    cfg.enqueue_patience = opt.enqueue_patience();
    cfg.dequeue_patience = opt.dequeue_patience();
    cfg.help_delay = opt.help_delay();
    cfg.remap = opt.remap();
    return cfg;
  }

  static Config sanitize(Config cfg) {
    if (cfg.enqueue_patience == 0) cfg.enqueue_patience = 1;
    if (cfg.dequeue_patience == 0) cfg.dequeue_patience = 1;
    if (cfg.help_delay == 0) cfg.help_delay = 1;
    if (cfg.max_threads == 0) cfg.max_threads = 1;
    // Every note must be representable: 9 slot bits, 21 aux bits.
    // Reject rather than clamp — a silently halved capacity or lost
    // handle slots would be far harder to debug than this throw.
    if (cfg.max_threads > detail::kMaxNoteThreads) {
      throw std::invalid_argument(
          "wcq: max_threads exceeds kMaxNoteThreads (512)");
    }
    if (cfg.order > detail::kMaxNoteOrder) {
      throw std::invalid_argument("wcq: order exceeds kMaxNoteOrder (20)");
    }
    return cfg;
  }

  void release_rec(ThreadRec* rec) {
    // The owner is past its last operation, so its request is Idle and
    // helpers ignore it; counters intentionally persist so stats()
    // stays monotone across recycling.
    slots_.release(static_cast<unsigned>(rec - recs_));
  }

  RingRequest* req_of(ThreadRec* rec) {
    return &reqs_[static_cast<unsigned>(rec - recs_)];
  }

  // Publish one ring-level operation as this thread's request. Does
  // not drive it: from this moment any helper can complete it.
  void publish_ring_op(ThreadRec* rec, bool fq_ring, bool deq,
                       std::uint64_t arg) {
    RingRequest* r = req_of(rec);
    const std::uint64_t seq = ++rec->seq;
    r->arg.store(arg, std::memory_order_relaxed);
    r->result.store(detail::pack_result(seq, detail::kResultNone),
                    std::memory_order_relaxed);
    WcqRing& ring = fq_ring ? fq_ : aq_;
    r->pos.store(deq ? ring.head() : ring.tail(), std::memory_order_relaxed);
    r->ctl.store(detail::pack_ctl(seq, 0, fq_ring, deq, detail::kReqPending),
                 std::memory_order_release);
  }

  // Owner side: drive own request to a terminal state, harvest the
  // result, and return the record to Idle. True iff DoneOk.
  bool complete_ring_op(ThreadRec* rec, std::uint64_t* out) {
    RingRequest* r = req_of(rec);
    std::uint64_t c = r->ctl.load(std::memory_order_acquire);
    (detail::ctl_fq(c) ? fq_ : aq_).help_slow(r);
    c = r->ctl.load(std::memory_order_acquire);
    const bool ok = detail::ctl_state(c) == detail::kReqDoneOk;
    if (ok && out != nullptr) {
      // finalize() CASed the seq-tagged result in before DoneOk.
      *out = detail::result_val(r->result.load(std::memory_order_acquire));
    }
    r->ctl.store(detail::ctl_with(c, 0, detail::kReqIdle),
                 std::memory_order_release);
    return ok;
  }

  // Helper side: drive a peer's request if it has one pending. Safe to
  // call concurrently with the owner and other helpers; everyone
  // advances the same shared state by CAS.
  bool help_request(RingRequest* r) {
    const std::uint64_t c = r->ctl.load(std::memory_order_acquire);
    const std::uint64_t st = detail::ctl_state(c);
    if (st != detail::kReqPending && st != detail::kReqPhase2) return false;
    (detail::ctl_fq(c) ? fq_ : aq_).help_slow(r);
    return true;
  }

  // Queue-level slow enqueue: two helpable ring requests in sequence.
  bool slow_push(ThreadRec* rec, std::uint64_t v) {
    std::uint64_t idx = 0;
    publish_ring_op(rec, /*fq_ring=*/false, /*deq=*/true, 0);
    if (!complete_ring_op(rec, &idx)) return false;  // aq empty: full
    data_[idx].store(v, std::memory_order_relaxed);
    publish_ring_op(rec, /*fq_ring=*/true, /*deq=*/false, idx);
    complete_ring_op(rec, nullptr);  // ring enqueue cannot fail
    return true;
  }

  bool slow_pop(ThreadRec* rec, std::uint64_t* v) {
    std::uint64_t idx = 0;
    publish_ring_op(rec, /*fq_ring=*/true, /*deq=*/true, 0);
    if (!complete_ring_op(rec, &idx)) return false;  // empty
    *v = data_[idx].load(std::memory_order_relaxed);
    publish_ring_op(rec, /*fq_ring=*/false, /*deq=*/false, idx);
    complete_ring_op(rec, nullptr);
    return true;
  }

  // Every help_delay own-operations, look at one peer (round-robin)
  // and drive its pending request, if any, to completion.
  void maybe_help(ThreadRec* rec) {
    if (++rec->op_count % cfg_.help_delay != 0) return;
    const unsigned touched = slots_.high_water();
    if (touched <= 1) return;
    unsigned peer = rec->help_cursor++ % touched;
    if (&recs_[peer] == rec) {
      // Landing on our own record must still spend the round on a real
      // peer: consecutive cursor values differ mod touched (>= 2), so
      // one step forward is guaranteed to leave our record.
      peer = rec->help_cursor++ % touched;
    }
    if (help_request(&reqs_[peer])) {
      rec->helps.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const Config cfg_;
  const std::uint64_t n_;
  RingRequest* const reqs_;  // shared by both rings, indexed by slot
  WcqRing aq_;
  WcqRing fq_;
  std::atomic<std::uint64_t>* data_ = nullptr;
  ThreadRec* recs_ = nullptr;
  SlotRegistry slots_;
};

template <bool Portable>
class WcqQueueT<Portable>::Handle {
 public:
  // Handles only come from the queue; a default-constructed one would
  // dereference null on first use.
  Handle() = delete;

  Handle(Handle&& other) noexcept
      : q_(std::exchange(other.q_, nullptr)),
        rec_(std::exchange(other.rec_, nullptr)) {}

  Handle& operator=(Handle&& other) noexcept {
    if (this != &other) {
      release();
      q_ = std::exchange(other.q_, nullptr);
      rec_ = std::exchange(other.rec_, nullptr);
    }
    return *this;
  }

  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  ~Handle() { release(); }

  // True unless moved-from. Using a moved-from handle is UB.
  explicit operator bool() const { return rec_ != nullptr; }

 private:
  friend class WcqQueueT<Portable>;
  friend struct WcqTestAccess<Portable>;

  Handle(WcqQueueT* q, ThreadRec* rec) : q_(q), rec_(rec) {}

  void release() {
    if (q_ != nullptr) q_->release_rec(rec_);
    q_ = nullptr;
    rec_ = nullptr;
  }

  WcqQueueT* q_ = nullptr;
  ThreadRec* rec_ = nullptr;
};

// Deterministic slow-path levers for the test suite: publish a request
// exactly as a stalling owner would, let other handles help it, then
// resume the owner. Mirrors WcqQueueT's own slow_push/slow_pop split.
template <bool Portable>
struct WcqTestAccess {
  using Q = WcqQueueT<Portable>;
  using H = typename Q::Handle;

  // Owner published a slow pop (stage 1: fq dequeue) and stalled.
  static void publish_stalled_pop(Q& q, H& h) {
    q.publish_ring_op(h.rec_, /*fq_ring=*/true, /*deq=*/true, 0);
  }

  // Owner got its free index, wrote the value, published the fq
  // enqueue (stage 2) — and stalled before driving it. False iff the
  // aq had no free index (queue full): nothing is published then, so
  // a test never installs a garbage index.
  static bool publish_stalled_push(Q& q, H& h, std::uint64_t v) {
    std::uint64_t idx = 0;
    if (q.aq_.dequeue_idx(&idx, WcqRing::kUnbounded) != WcqRing::kOk) {
      return false;
    }
    q.data_[idx].store(v, std::memory_order_relaxed);
    q.publish_ring_op(h.rec_, /*fq_ring=*/true, /*deq=*/false, idx);
    return true;
  }

  // Helper-side single call: drive h's request as maybe_help would.
  static bool help(Q& q, H& h) { return q.help_request(q.req_of(h.rec_)); }

  static bool done_ok(Q& q, H& h) {
    const std::uint64_t c =
        q.req_of(h.rec_)->ctl.load(std::memory_order_acquire);
    return detail::ctl_state(c) == detail::kReqDoneOk;
  }

  // Owner resumes a stalled pop: finish stage 1 (possibly already done
  // by helpers), then run stage 2 (return the index to aq).
  static bool finish_pop(Q& q, H& h, std::uint64_t* v) {
    std::uint64_t idx = 0;
    if (!q.complete_ring_op(h.rec_, &idx)) return false;
    *v = q.data_[idx].load(std::memory_order_relaxed);
    q.publish_ring_op(h.rec_, /*fq_ring=*/false, /*deq=*/false, idx);
    q.complete_ring_op(h.rec_, nullptr);
    return true;
  }

  // Owner resumes a stalled push: its stage 2 is the whole remainder.
  static bool finish_push(Q& q, H& h) {
    return q.complete_ring_op(h.rec_, nullptr);
  }

  static std::uint64_t helps(H& h) {
    return h.rec_->helps.load(std::memory_order_relaxed);
  }
};

using WcqQueue = WcqQueueT<false>;
using WcqPortableQueue = WcqQueueT<true>;

}  // namespace wcq
