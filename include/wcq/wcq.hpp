// wCQ (Nikolaev & Ravindran, SPAA 2022): a wait-free bounded queue
// built on the SCQ ring. The fast path is SCQ with bounded patience
// (Section 6 uses 16 enqueue / 64 dequeue attempts); when patience
// runs out the operation is published in the thread's handle record
// and completed through helping, so a thread starved by FAA races
// still finishes. Threads check one peer for a pending request every
// `help_delay` own operations ("to amortize the cost of help_threads",
// Section 3.1).
//
// Fidelity note: the paper completes a stuck operation cooperatively
// with double-width CASes and per-entry note fields (Figures 4-7) so
// *any* number of helpers make progress on the same request. This
// reproduction uses single-executor delegation: the request is claimed
// (request-state CAS) by exactly one thread — owner or helper — which
// then runs the lock-free path to completion and publishes the result.
// The observable structure (handles, patience, help_delay, slow-path
// counters, finalization via the request state) matches the paper; the
// step-complexity bound is weaker. Replacing delegation with the CAS2
// note protocol is tracked in ROADMAP.md.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/scq_ring.hpp"

namespace wcq {

struct WcqStats {
  std::uint64_t fast_enqueues = 0;
  std::uint64_t slow_enqueues = 0;
  std::uint64_t fast_dequeues = 0;
  std::uint64_t slow_dequeues = 0;
  std::uint64_t helps = 0;
};

// Portable=true models the Section 4 build for LL/SC machines: no
// fetch_or on ring entries (CAS-loop consume) — the algorithmic shape
// of the POWER version exercised on whatever ISA we run on.
template <bool Portable>
struct WcqTestAccess;

template <bool Portable>
class WcqQueueT {
 public:
  // Backend-internal configuration; the public surface is
  // wcq::options. Kept because the paper's knob names (MAX_PATIENCE,
  // HELP_DELAY) map onto it one-to-one.
  struct Config {
    unsigned order = 16;  // capacity = 2^order values
    unsigned max_threads = 128;
    unsigned enqueue_patience = 16;  // paper Section 6
    unsigned dequeue_patience = 64;
    unsigned help_delay = 16;
    bool remap = true;
  };

  class Handle;

  explicit WcqQueueT(const Config& cfg)
      : cfg_(sanitize(cfg)),
        n_(std::uint64_t{1} << cfg_.order),
        aq_(cfg_.order, cfg_.remap, Portable),
        fq_(cfg_.order, cfg_.remap, Portable),
        slots_(cfg_.max_threads) {
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, ScqRing::kUnbounded);
    }
    recs_ = static_cast<ThreadRec*>(
        mem::alloc(cfg_.max_threads * sizeof(ThreadRec)));
    for (unsigned i = 0; i < cfg_.max_threads; ++i) new (&recs_[i]) ThreadRec();
  }

  explicit WcqQueueT(const options& opt) : WcqQueueT(config_from(opt)) {}

  ~WcqQueueT() {
    // Lifetime contract: every handle must die before its queue — a
    // surviving handle's destructor would write into freed registry
    // memory. Catch the misuse here, where the guilty queue is known.
    assert(slots_.live() == 0 &&
           "wcq: a Handle is outliving its queue (use-after-free ahead)");
    for (unsigned i = 0; i < cfg_.max_threads; ++i) recs_[i].~ThreadRec();
    mem::free(recs_, cfg_.max_threads * sizeof(ThreadRec));
    mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>));
  }

  WcqQueueT(const WcqQueueT&) = delete;
  WcqQueueT& operator=(const WcqQueueT&) = delete;

  std::uint64_t capacity() const { return n_; }

  // Every participating thread needs its own handle (the paper's
  // per-thread state for helping). Handles are RAII: destruction
  // returns the ThreadRec slot to a free list, so max_threads bounds
  // *concurrent* participants, not lifetime thread count. A handle
  // must not outlive its queue (its destructor touches the queue's
  // registry); the queue's destructor asserts this in debug builds.
  //
  // nullopt iff max_threads handles are simultaneously live.
  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, &recs_[slot]);
  }

  // Throwing flavor for call sites where exhaustion is a logic error.
  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "wcq: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // Handles now recycle their slot on destruction, so the lifetime
  // cap that motivated this name is gone.
  [[deprecated("use get_handle()/try_get_handle()")]] Handle make_handle() {
    return get_handle();
  }

  // False iff the queue is full.
  bool try_push(std::uint64_t v, Handle& h) {
    ThreadRec* rec = h.rec_;
    maybe_help(rec);
    std::uint64_t idx = 0;
    const ScqRing::Result rc =
        aq_.dequeue_idx(&idx, cfg_.enqueue_patience);
    if (rc == ScqRing::kEmpty) {
      rec->fast_enq.fetch_add(1, std::memory_order_relaxed);
      return false;  // full: definitive, no slow path needed
    }
    if (rc == ScqRing::kOk) {
      data_[idx].store(v, std::memory_order_relaxed);
      if (fq_.enqueue_idx(idx, cfg_.enqueue_patience) == ScqRing::kOk) {
        rec->fast_enq.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // We own the slot; ring enqueue cannot fail, only contend.
      fq_.enqueue_idx(idx, ScqRing::kUnbounded);
      rec->slow_enq.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    rec->slow_enq.fetch_add(1, std::memory_order_relaxed);
    return slow_op(rec, kPendingEnq, v, nullptr);
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) {
    ThreadRec* rec = h.rec_;
    maybe_help(rec);
    std::uint64_t idx = 0;
    const ScqRing::Result rc =
        fq_.dequeue_idx(&idx, cfg_.dequeue_patience);
    if (rc == ScqRing::kEmpty) {
      rec->fast_deq.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (rc == ScqRing::kOk) {
      *v = data_[idx].load(std::memory_order_relaxed);
      aq_.enqueue_idx(idx, ScqRing::kUnbounded);
      rec->fast_deq.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    rec->slow_deq.fetch_add(1, std::memory_order_relaxed);
    return slow_op(rec, kPendingDeq, 0, v);
  }

  // Pre-facade spellings, kept one PR for out-of-tree callers.
  [[deprecated("use try_push")]] bool enqueue(std::uint64_t v, Handle& h) {
    return try_push(v, h);
  }

  [[deprecated("use try_pop")]] bool dequeue(std::uint64_t* v, Handle& h) {
    return try_pop(v, h);
  }

  WcqStats stats() const {
    WcqStats s;
    // Counters survive slot recycling (they are per-slot accumulators,
    // never reset on release), so this sum is consistent across any
    // amount of thread churn.
    const unsigned touched = slots_.high_water();
    for (unsigned i = 0; i < touched; ++i) {
      s.fast_enqueues += recs_[i].fast_enq.load(std::memory_order_relaxed);
      s.slow_enqueues += recs_[i].slow_enq.load(std::memory_order_relaxed);
      s.fast_dequeues += recs_[i].fast_deq.load(std::memory_order_relaxed);
      s.slow_dequeues += recs_[i].slow_deq.load(std::memory_order_relaxed);
      s.helps += recs_[i].helps.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  // Test-only backdoor (tests/test_helping.cpp): simulates a stalled
  // thread by publishing a request without self-claiming, so the
  // helper-completion path gets deterministic coverage.
  friend struct WcqTestAccess<Portable>;

  // Request states. Owner publishes kPendingEnq/kPendingDeq; exactly
  // one thread CASes it to kActive and finalizes with kDone*.
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPendingEnq = 1;
  static constexpr std::uint64_t kPendingDeq = 2;
  static constexpr std::uint64_t kActive = 3;
  static constexpr std::uint64_t kDoneOk = 4;
  static constexpr std::uint64_t kDoneFail = 5;

  struct alignas(detail::kNoFalseSharing) ThreadRec {
    std::atomic<std::uint64_t> state{kIdle};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> result{0};
    std::atomic<std::uint64_t> fast_enq{0};
    std::atomic<std::uint64_t> slow_enq{0};
    std::atomic<std::uint64_t> fast_deq{0};
    std::atomic<std::uint64_t> slow_deq{0};
    std::atomic<std::uint64_t> helps{0};
    // Owner-thread locals (never touched by helpers).
    std::uint64_t op_count = 0;
    unsigned help_cursor = 0;
  };

  static Config config_from(const options& opt) {
    Config cfg;
    cfg.order = opt.order();
    cfg.max_threads = opt.max_threads();
    cfg.enqueue_patience = opt.enqueue_patience();
    cfg.dequeue_patience = opt.dequeue_patience();
    cfg.help_delay = opt.help_delay();
    cfg.remap = opt.remap();
    return cfg;
  }

  static Config sanitize(Config cfg) {
    if (cfg.enqueue_patience == 0) cfg.enqueue_patience = 1;
    if (cfg.dequeue_patience == 0) cfg.dequeue_patience = 1;
    if (cfg.help_delay == 0) cfg.help_delay = 1;
    if (cfg.max_threads == 0) cfg.max_threads = 1;
    return cfg;
  }

  void release_rec(ThreadRec* rec) {
    // The owner is past its last operation, so state is kIdle and no
    // helper will claim this record; counters intentionally persist so
    // stats() stays monotone across recycling.
    slots_.release(static_cast<unsigned>(rec - recs_));
  }

  bool do_enqueue(std::uint64_t v) {
    std::uint64_t idx = 0;
    if (aq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;
    }
    data_[idx].store(v, std::memory_order_relaxed);
    fq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  bool do_dequeue(std::uint64_t* v) {
    std::uint64_t idx = 0;
    if (fq_.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;
    }
    *v = data_[idx].load(std::memory_order_relaxed);
    aq_.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  bool slow_op(ThreadRec* rec, std::uint64_t kind, std::uint64_t arg,
               std::uint64_t* out) {
    rec->arg.store(arg, std::memory_order_relaxed);
    rec->state.store(kind, std::memory_order_release);
    unsigned spins = 0;
    for (;;) {
      std::uint64_t s = rec->state.load(std::memory_order_acquire);
      if (s == kind) {
        // Unclaimed: claim our own request and run it.
        if (rec->state.compare_exchange_strong(s, kActive,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          const bool ok =
              kind == kPendingEnq ? do_enqueue(arg) : do_dequeue(out);
          rec->state.store(kIdle, std::memory_order_release);
          return ok;
        }
        continue;
      }
      if (s == kDoneOk || s == kDoneFail) {
        if (kind == kPendingDeq && s == kDoneOk) {
          *out = rec->result.load(std::memory_order_acquire);
        }
        rec->state.store(kIdle, std::memory_order_release);
        return s == kDoneOk;
      }
      // kActive: a helper owns it; it finishes in a bounded number of
      // its own steps.
      detail::cpu_pause();
      if (++spins == 1024) {
        spins = 0;
#if defined(__linux__)
        // Be polite on small machines where the helper needs our core.
        sched_yield();
#endif
      }
    }
  }

  // Every help_delay own-operations, look at one peer (round-robin)
  // and complete its pending request if nobody else has claimed it.
  void maybe_help(ThreadRec* rec) {
    if (++rec->op_count % cfg_.help_delay != 0) return;
    const unsigned touched = slots_.high_water();
    if (touched <= 1) return;
    ThreadRec* peer = &recs_[rec->help_cursor++ % touched];
    if (peer == rec) {
      // Landing on our own record must still spend the round on a real
      // peer: consecutive cursor values differ mod touched (>= 2), so
      // one step forward is guaranteed to leave our record.
      peer = &recs_[rec->help_cursor++ % touched];
    }
    std::uint64_t s = peer->state.load(std::memory_order_acquire);
    if (s != kPendingEnq && s != kPendingDeq) return;
    if (!peer->state.compare_exchange_strong(s, kActive,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return;
    }
    bool ok;
    if (s == kPendingEnq) {
      ok = do_enqueue(peer->arg.load(std::memory_order_relaxed));
    } else {
      std::uint64_t v = 0;
      ok = do_dequeue(&v);
      peer->result.store(v, std::memory_order_release);
    }
    peer->state.store(ok ? kDoneOk : kDoneFail, std::memory_order_release);
    rec->helps.fetch_add(1, std::memory_order_relaxed);
  }

  const Config cfg_;
  const std::uint64_t n_;
  ScqRing aq_;
  ScqRing fq_;
  std::atomic<std::uint64_t>* data_ = nullptr;
  ThreadRec* recs_ = nullptr;
  SlotRegistry slots_;
};

template <bool Portable>
class WcqQueueT<Portable>::Handle {
 public:
  // Handles only come from the queue; a default-constructed one would
  // dereference null on first use.
  Handle() = delete;

  Handle(Handle&& other) noexcept
      : q_(std::exchange(other.q_, nullptr)),
        rec_(std::exchange(other.rec_, nullptr)) {}

  Handle& operator=(Handle&& other) noexcept {
    if (this != &other) {
      release();
      q_ = std::exchange(other.q_, nullptr);
      rec_ = std::exchange(other.rec_, nullptr);
    }
    return *this;
  }

  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  ~Handle() { release(); }

  // True unless moved-from. Using a moved-from handle is UB.
  explicit operator bool() const { return rec_ != nullptr; }

 private:
  friend class WcqQueueT<Portable>;
  friend struct WcqTestAccess<Portable>;

  Handle(WcqQueueT* q, ThreadRec* rec) : q_(q), rec_(rec) {}

  void release() {
    if (q_ != nullptr) q_->release_rec(rec_);
    q_ = nullptr;
    rec_ = nullptr;
  }

  WcqQueueT* q_ = nullptr;
  ThreadRec* rec_ = nullptr;
};

using WcqQueue = WcqQueueT<false>;
using WcqPortableQueue = WcqQueueT<true>;

}  // namespace wcq
