/// \file
/// wcq::smr — the shared safe-memory-reclamation layer every
/// dynamic-memory backend (MSQ, FAA, LCRQ, future YMC/LSCQ/uwCQ)
/// routes retired nodes through.
///
/// One Domain per queue, sized by the queue's max_threads: each
/// handle slot owns a fixed strip of hazard-pointer words plus one
/// epoch word, so the reclamation state — like the ThreadRec records
/// it sits next to — is bounded by *concurrent* participants
/// (SlotRegistry recycles the slots; quiesce() is the hand-back
/// hook).
///
/// Two protection idioms, usable together or alone per backend:
///
///  - Hazard pointers (Michael 2004; the YMC `check`/`update` hazard
///    idiom in SNIPPETS.md is the same shape): protect(slot, i, src)
///    publishes a pointer and re-validates the source until stable.
///    A retired node whose address is published anywhere is not
///    freed. MSQ and LCRQ use this for the node / ring currently in
///    hand.
///  - Epochs: pin(slot) publishes the current global epoch for the
///    duration of an operation. A node retired at epoch e is not
///    freed until every pinned slot shows an epoch strictly greater
///    than e — so any pointer obtained inside a pinned region stays
///    valid even when it was never individually protected. FAA uses
///    this for its segment walks (many transient segment pointers per
///    op; per-node hazards would cost a validation fence each hop).
///
/// Retiring is wait-free and amortized: retired nodes park on the
/// calling slot's local list, stamped with the current epoch; when
/// the list reaches the amnesty bound (MAX_GARBAGE shape: 2 x
/// max_threads by default, wcq::options::retire_threshold to
/// override) the slot scans — one epoch bump, one snapshot of all
/// hazard words and pinned epochs — and frees every node that is both
/// unprotected and epoch-safe. Total parked garbage is therefore
/// bounded by max_threads x threshold (+ nodes pinned by laggards),
/// restoring the bounded-memory comparison Figure 10 is supposed to
/// make.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

#include "wcq/detail.hpp"
#include "wcq/mem.hpp"

namespace wcq::smr {

/// Domain-wide reclamation counters, summed over all slots.
struct Stats {
  std::uint64_t retired_nodes = 0;    ///< currently parked, not yet freed
  std::uint64_t reclaimed_nodes = 0;  ///< freed by scans (not the dtor)
  std::uint64_t retire_calls = 0;     ///< total retire() invocations
  std::uint64_t scans = 0;            ///< reclamation scans run
};

/// One reclamation domain per queue: hazard-pointer strips + epoch
/// words per handle slot, slot-local retire lists with an amnesty
/// bound.
class Domain {
 public:
  /// Hazard words per slot. Two is what the classic algorithms need
  /// (MSQ protects a node and its successor; LCRQ one ring at a
  /// time).
  static constexpr unsigned kHazardsPerSlot = 2;
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  /// retire_threshold 0 = auto: MAX_GARBAGE(n) = 2n per slot.
  explicit Domain(unsigned max_slots, unsigned retire_threshold = 0)
      : slots_(max_slots),
        threshold_(retire_threshold != 0 ? retire_threshold
                                         : 2 * (max_slots ? max_slots : 1)),
        state_(static_cast<SlotState*>(
            mem::alloc(slots_ * sizeof(SlotState), alignof(SlotState)))) {
    for (unsigned i = 0; i < slots_; ++i) new (&state_[i]) SlotState();
  }

  /// Teardown contract mirrors the queues': no concurrent access.
  /// Every still-parked node is freed unconditionally.
  ~Domain() {
    for (unsigned i = 0; i < slots_; ++i) {
      for (const Retired& r : state_[i].retired) r.del(r.p, r.ctx);
      state_[i].~SlotState();
    }
    mem::free(state_, slots_ * sizeof(SlotState), alignof(SlotState));
  }

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  // ---- hazard pointers ----

  /// Publish src's current value as hazard `i` of `slot` and re-read
  /// until the publication provably happened before a load that still
  /// sees the same pointer; from then on the pointee cannot be freed
  /// until the hazard is overwritten or cleared.
  template <typename T>
  T* protect(unsigned slot, unsigned i, const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      state_[slot].hp[i].store(p, std::memory_order_seq_cst);
      T* again = src.load(std::memory_order_seq_cst);
      if (again == p) return p;
      p = again;
    }
  }

  void clear_hazard(unsigned slot, unsigned i) {
    state_[slot].hp[i].store(nullptr, std::memory_order_release);
  }

  // ---- epochs ----

  /// Enter a pinned region: everything reachable from the data
  /// structure's shared roots right now (and everything retired while
  /// we stay pinned) outlives the region.
  void pin(unsigned slot) {
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    state_[slot].epoch.store(e, std::memory_order_seq_cst);
  }

  void unpin(unsigned slot) {
    state_[slot].epoch.store(kQuiescent, std::memory_order_release);
  }

  /// RAII pin for backends whose every operation is one pinned
  /// region.
  class Pin {
   public:
    Pin(Domain& d, unsigned slot) : d_(d), slot_(slot) { d_.pin(slot_); }
    ~Pin() { d_.unpin(slot_); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    Domain& d_;
    unsigned slot_;
  };

  // ---- retire / scan ----

  /// Hand `p` to the domain; del(p, ctx) runs once `p` is provably
  /// unreachable (no hazard holds it, no pinned slot predates its
  /// retirement). Caller must have already unlinked `p` from every
  /// shared root. Only the owner of `slot` may call (slot-local
  /// list).
  void retire(unsigned slot, void* p, void (*del)(void*, void*), void* ctx) {
    SlotState& s = state_[slot];
    s.retired.push_back(
        Retired{p, del, ctx, epoch_.load(std::memory_order_acquire)});
    s.retired_count.store(s.retired.size(), std::memory_order_relaxed);
    s.retire_calls.fetch_add(1, std::memory_order_relaxed);
    if (s.retired.size() >= threshold_) scan(slot);
  }

  /// Free every node on `slot`'s list that no hazard protects and no
  /// pinned epoch can still reach. Advances the global epoch first so
  /// quiescent-but-returning readers land on the young side of the
  /// cut.
  void scan(unsigned slot) {
    SlotState& s = state_[slot];
    s.scans.fetch_add(1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_seq_cst);

    // Snapshot the protection state *after* the bump: any reader that
    // pins later sees post-unlink roots and cannot reach our
    // retirees.
    std::uint64_t min_epoch = epoch_.load(std::memory_order_seq_cst);
    std::vector<void*> hazards;
    hazards.reserve(slots_ * kHazardsPerSlot);
    for (unsigned i = 0; i < slots_; ++i) {
      for (unsigned j = 0; j < kHazardsPerSlot; ++j) {
        if (void* h = state_[i].hp[j].load(std::memory_order_seq_cst)) {
          hazards.push_back(h);
        }
      }
      const std::uint64_t e = state_[i].epoch.load(std::memory_order_seq_cst);
      if (e != kQuiescent && e < min_epoch) min_epoch = e;
    }

    auto protected_by_hazard = [&](void* p) {
      for (void* h : hazards) {
        if (h == p) return true;
      }
      return false;
    };

    std::size_t kept = 0;
    for (std::size_t i = 0; i < s.retired.size(); ++i) {
      const Retired& r = s.retired[i];
      // Strict <: a reader pinned at exactly r.epoch may have taken
      // its root pointer before the unlink that preceded this retire.
      if (r.epoch < min_epoch && !protected_by_hazard(r.p)) {
        r.del(r.p, r.ctx);
        s.reclaimed.fetch_add(1, std::memory_order_relaxed);
      } else {
        s.retired[kept++] = r;
      }
    }
    s.retired.resize(kept);
    s.retired_count.store(kept, std::memory_order_relaxed);
  }

  /// Handle hand-back hook: drop the slot's protections and try to
  /// drain its list. Leftovers stay parked on the slot — the next
  /// handle recycled onto it inherits them, and the destructor is the
  /// backstop — so nothing leaks and nothing is freed early.
  void quiesce(unsigned slot) {
    for (unsigned j = 0; j < kHazardsPerSlot; ++j) clear_hazard(slot, j);
    unpin(slot);
    if (!state_[slot].retired.empty()) scan(slot);
  }

  unsigned threshold() const { return threshold_; }

  Stats stats() const {
    Stats out;
    for (unsigned i = 0; i < slots_; ++i) {
      out.retired_nodes +=
          state_[i].retired_count.load(std::memory_order_relaxed);
      out.reclaimed_nodes +=
          state_[i].reclaimed.load(std::memory_order_relaxed);
      out.retire_calls +=
          state_[i].retire_calls.load(std::memory_order_relaxed);
      out.scans += state_[i].scans.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct Retired {
    void* p;
    void (*del)(void*, void*);
    void* ctx;
    std::uint64_t epoch;
  };

  struct alignas(detail::kNoFalseSharing) SlotState {
    std::atomic<void*> hp[kHazardsPerSlot] = {};
    std::atomic<std::uint64_t> epoch{kQuiescent};
    // Owner-only (the slot holder; recycled with the slot). The
    // atomic mirrors below exist so stats()/tests can read counts
    // from other threads without touching the vector.
    std::vector<Retired> retired;
    std::atomic<std::uint64_t> retired_count{0};
    std::atomic<std::uint64_t> reclaimed{0};
    std::atomic<std::uint64_t> retire_calls{0};
    std::atomic<std::uint64_t> scans{0};
  };

  const unsigned slots_;
  const unsigned threshold_;
  SlotState* state_;
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> epoch_{1};
};

}  // namespace wcq::smr
