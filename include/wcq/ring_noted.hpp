// The helping/note layer of the ring kernel — out-of-line definitions
// of every ScqRingT member constrained by requires(Noted). Only the
// wCQ instantiation pulls this in (via wcq.hpp); SCQ-family rings
// compile against scq_ring.hpp alone and never instantiate these.
//
// See the slow-path lifecycle comment at the top of scq_ring.hpp for
// the Pending -> Phase2 -> DoneOk/DoneEmpty protocol these steps
// implement (SPAA 2022, Figures 4-7).
#pragma once

#include <atomic>
#include <cstdint>

#include "wcq/detail.hpp"
#include "wcq/scq_ring.hpp"

namespace wcq {

// Drive `r`'s published operation until its state leaves
// {Pending, Phase2}. The owner and any number of helpers run this
// concurrently; every step is a CAS on shared state, so all of them
// make progress on the *same* request — nobody claims it exclusively.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::help_slow(RingRequest* r)
  requires(Noted)
{
  for (;;) {
    const std::uint64_t c = r->ctl.load(std::memory_order_acquire);
    const std::uint64_t st = detail::ctl_state(c);
    if (st != detail::kReqPending && st != detail::kReqPhase2) {
      return;  // done (or already reused)
    }
    if (detail::ctl_fq(c) != is_fq_) return;  // request moved rings
    if (st == detail::kReqPhase2) {
      // Commit slot decided: converge on j until the note retires.
      const std::uint64_t j = detail::ctl_j(c);
      const std::uint64_t n = entries_[j].note.load(std::memory_order_acquire);
      if (n != 0) {
        help_note(j, n);
      } else {
        detail::cpu_pause();  // read skew; the ctl re-load resolves it
      }
      continue;
    }
    if (detail::ctl_deq(c)) {
      step_dequeue(r, c);
    } else {
      step_enqueue(r, c);
    }
  }
}

// Resolve whatever note is parked at slot j: advance the owning
// request one step (commit decision, commit, result delivery) or
// clear the note if its request is over. Callers loop; every call
// makes global progress or observes someone else's.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::help_note(std::uint64_t j, std::uint64_t n)
  requires(Noted)
{
  RingRequest* r = &reqs_[detail::note_slot(n)];
  const std::uint64_t c = r->ctl.load(std::memory_order_acquire);
  const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
  if (!detail::note_matches_ctl(n, c)) {
    // Stale note of a finished request. Phase-A never changed the
    // word, and a phase-B note's result was delivered before its
    // owner could retire the request, so clearing is always safe.
    pair_cas(j, {w, n}, {w, 0});
    return;
  }
  const std::uint64_t st = detail::ctl_state(c);
  if (st == detail::kReqPending) {
    // A claim exists but no commit slot is decided: propose this one.
    // Exactly one Pending->Phase2 transition per seq ever succeeds.
    if (!detail::note_phase_b(n)) {
      std::uint64_t expc = c;
      r->ctl.compare_exchange_strong(
          expc, detail::ctl_with(c, j, detail::kReqPhase2),
          std::memory_order_acq_rel, std::memory_order_acquire);
    }
    return;
  }
  if (st == detail::kReqPhase2) {
    if (detail::ctl_j(c) != j) {
      // A claim that lost the commit decision: revoke it.
      if (!detail::note_phase_b(n)) pair_cas(j, {w, n}, {w, 0});
      return;
    }
    if (!detail::note_phase_b(n)) {
      commit(r, j, n, w);
    } else {
      finalize(r, c, j, n);
    }
    return;
  }
  // Terminal state (DoneOk / DoneEmpty): phase-B notes are retired,
  // phase-A claims revoked — both are "clear the note, keep the word".
  pair_cas(j, {w, n}, {w, 0});
}

// Apply the committed operation at slot j: one CAS2 flips the
// phase-A claim to phase-B and performs the word change. Exactly one
// such CAS2 can succeed; racing helpers fail benignly and re-read.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::commit(RingRequest* r, std::uint64_t j,
                                          std::uint64_t n, std::uint64_t w)
  requires(Noted)
{
  const std::uint64_t slot = detail::note_slot(n);
  const std::uint64_t seq = detail::note_seq(n);
  if (detail::note_deq(n)) {
    // Consume: the index rides into the phase-B note so the result
    // survives even if this helper stalls right after the CAS2. The
    // safe bit is cleared so the word is distinguishable from an
    // empty close at the same cycle: the fast dequeuer whose head
    // ticket maps here must see that its position yielded a value
    // (to the request) and skip the threshold decrement.
    const std::uint64_t x = detail::note_aux(n);
    const std::uint64_t consumed =
        geo_.pack(geo_.cycle_of_entry(w), false, geo_.bot());
    if (pair_cas(j, {w, n},
                 {consumed, detail::pack_note(true, true, slot, seq, x)})) {
      bump(head_,
           geo_.pos_of(geo_.cycle_of_entry(w), remap_.unmap(j)) + 1);
    }
    return;
  }
  // Install: reconstruct the claim's target cycle from its low bits
  // (the claim guaranteed the gap to the frozen word's cycle fits).
  const std::uint64_t low = detail::note_aux(n);
  const std::uint64_t wc = geo_.cycle_of_entry(w);
  std::uint64_t tcycle = (wc & ~detail::kNoteAuxMask) | low;
  if (tcycle <= wc) tcycle += detail::kNoteAuxMask + 1;
  const std::uint64_t eidx = r->arg.load(std::memory_order_acquire);
  if (pair_cas(j, {w, n},
               {geo_.pack(tcycle, true, eidx),
                detail::pack_note(true, false, slot, seq, eidx)})) {
    threshold_.arm();
    bump(tail_, geo_.pos_of(tcycle, remap_.unmap(j)) + 1);
  }
}

// Deliver the result and finalize the ctl, then retire the phase-B
// note. Every step is idempotent-by-CAS; any helper may run it. The
// result CAS is seq-tagged so a finalizer that stalled here for a
// whole operation lifetime cannot clobber a successor's result.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::finalize(RingRequest* r, std::uint64_t c,
                                            std::uint64_t j, std::uint64_t n)
  requires(Noted)
{
  const std::uint64_t seq = detail::ctl_seq(c);
  if (detail::ctl_deq(c)) {
    std::uint64_t expr = detail::pack_result(seq, detail::kResultNone);
    r->result.compare_exchange_strong(
        expr, detail::pack_result(seq, detail::note_aux(n)),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }
  // Result is in place (by us or a sibling) before the ctl goes
  // terminal, so the owner can read it with a single load.
  std::uint64_t expc = c;
  r->ctl.compare_exchange_strong(expc,
                                 detail::ctl_with(c, j, detail::kReqDoneOk),
                                 std::memory_order_acq_rel,
                                 std::memory_order_acquire);
  // Ctl is now terminal (by us or a sibling); retire the note. A
  // failed CAS just leaves the now-stale note for any toucher.
  const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
  pair_cas(j, {w, n}, {w, 0});
}

// One Pending-state step of a slow dequeue: claim a value, account
// an empty position, or finalize empty.
//
// Threshold accounting rides on the *global* head ticket stream, as
// in the paper: a spent scan position decrements threshold only via
// a successful CAS of head_ from p to p+1, which takes ticket p for
// this request exactly the way a fast dequeuer's FAA would. FAA and
// CAS serialize on head_, so every ticket has one owner and hence at
// most one decrement — no matter how many slow requests scan the
// same positions concurrently (their head CASes for a shared p all
// lose but one) and no matter how many fast dequeuers interleave
// (a ticket the FAA stream took makes our CAS fail, and its holder
// is the accountant). A stalled helper never blocks accounting: the
// head CAS is attempted by every helper at p before the pos advance,
// and the one success is itself the idempotence token.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::step_dequeue(RingRequest* r,
                                                std::uint64_t c)
  requires(Noted)
{
  if (threshold_.spent()) {
    try_finalize_empty(r, c);
    return;
  }
  const std::uint64_t p = r->pos.load(std::memory_order_acquire);
  const std::uint64_t pcycle = geo_.cycle_of_pos(p);
  const std::uint64_t j = remap_.map(p);
  const std::uint64_t n = entries_[j].note.load(std::memory_order_acquire);
  if (n != 0) {
    help_note(j, n);  // ours: drives the commit decision; foreign: unblocks
    return;
  }
  const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
  const std::uint64_t ec = geo_.cycle_of_entry(w);
  if (ec == pcycle && geo_.idx_of_entry(w) != geo_.bot()) {
    // Claim the value: word frozen, index recorded in the note.
    pair_cas(j, {w, 0},
             {w, detail::pack_note(false, true, slot_of(r),
                                   detail::ctl_seq(c),
                                   geo_.idx_of_entry(w))});
    return;
  }
  if (ec > pcycle) {
    // Our scan position fell behind the ring; jump it forward.
    advance_pos(r, p, head_.load(std::memory_order_seq_cst));
    return;
  }
  if (ec < pcycle) {
    const std::uint64_t fresh =
        geo_.idx_of_entry(w) == geo_.bot()
            ? geo_.pack(pcycle, geo_.is_safe(w), geo_.bot())
            : geo_.pack(ec, false, geo_.idx_of_entry(w));
    if (!word_cas(j, w, fresh)) return;
    // Spent as empty at pcycle; fall through to account ticket p.
  }
  // Position p is spent: closed empty just now, or already at our
  // cycle with BOT. The cleared safe bit marks a slow-path consume —
  // that position yielded a value, so even if we end up owning its
  // ticket (the committer may have stalled before bumping head_) it
  // must not be accounted as a failed position.
  const bool consumed_here =
      ec == pcycle && geo_.idx_of_entry(w) == geo_.bot() && !geo_.is_safe(w);
  std::uint64_t hexp = p;
  if (head_.compare_exchange_strong(hexp, p + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst) &&
      !consumed_here) {
    // Ticket p is ours and yielded nothing: the fast path's rules.
    const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
    if (t <= p + 1) {
      catchup(t, p + 1);
      threshold_.spend();
      try_finalize_empty(r, c);
    } else if (threshold_.spend()) {
      try_finalize_empty(r, c);
    }
  }
  // Ticket p accounted (by us, a sibling helper, or the fast holder
  // head_'s FAA stream gave it to); the scan may move on.
  advance_pos(r, p, p + 1);
}

// One Pending-state step of a slow enqueue: claim an eligible empty
// entry or advance the scan. Never finalizes empty — both rings of
// the queue construction have guaranteed room for their index.
template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::step_enqueue(RingRequest* r,
                                                std::uint64_t c)
  requires(Noted)
{
  const std::uint64_t p = r->pos.load(std::memory_order_acquire);
  const std::uint64_t pcycle = geo_.cycle_of_pos(p);
  const std::uint64_t j = remap_.map(p);
  const std::uint64_t n = entries_[j].note.load(std::memory_order_acquire);
  if (n != 0) {
    help_note(j, n);
    return;
  }
  const std::uint64_t w = entries_[j].word.load(std::memory_order_acquire);
  const std::uint64_t ec = geo_.cycle_of_entry(w);
  if (ec < pcycle && geo_.idx_of_entry(w) == geo_.bot() &&
      (geo_.is_safe(w) || head_.load(std::memory_order_seq_cst) <= p)) {
    if (pcycle - ec > detail::kNoteAuxMask) {
      // Ancient entry: the claim's aux bits could not reconstruct
      // the target cycle unambiguously. Normalize first (advancing
      // an empty entry's cycle is what dequeuers do all the time).
      word_cas(j, w, geo_.pack(pcycle - 1, geo_.is_safe(w), geo_.bot()));
      return;
    }
    // Claim: word frozen, target cycle's low bits recorded.
    pair_cas(j, {w, 0},
             {w, detail::pack_note(false, false, slot_of(r),
                                   detail::ctl_seq(c),
                                   pcycle & detail::kNoteAuxMask)});
    return;
  }
  std::uint64_t next = p + 1;
  if (ec > pcycle) {
    // Scan fell behind; jump toward the live tail.
    const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
    if (t > next) next = t;
  }
  advance_pos(r, p, next);
}

template <bool Noted, bool Finalizable>
bool ScqRingT<Noted, Finalizable>::advance_pos(RingRequest* r, std::uint64_t p,
                                               std::uint64_t target)
  requires(Noted)
{
  if (target <= p) target = p + 1;
  return r->pos.compare_exchange_strong(p, target, std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

template <bool Noted, bool Finalizable>
void ScqRingT<Noted, Finalizable>::try_finalize_empty(RingRequest* r,
                                                      std::uint64_t c)
  requires(Noted)
{
  std::uint64_t expc = c;
  r->ctl.compare_exchange_strong(
      expc, detail::ctl_with(c, 0, detail::kReqDoneEmpty),
      std::memory_order_acq_rel, std::memory_order_acquire);
}

}  // namespace wcq
