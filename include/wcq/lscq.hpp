// LSCQ — the unbounded queue of the SCQ paper (Nikolaev, DISC 2019,
// §5) and the strongest lock-free contender in wCQ's Figures 10-12: a
// Michael-Scott list whose nodes are whole SCQ segments (two-ring
// bounded queues). Values live in per-segment data arrays, so — unlike
// LCRQ/FAA — no value bit pattern is reserved: every uint64_t is
// storable.
//
// Enqueue works on the list tail's segment; when its value ring
// refuses (closed) or its free-index ring is exhausted, a fresh
// segment seeded with the value is appended. Dequeue drains the head
// segment; when it is empty *and* a successor exists, the segment is
// finalized:
//
//   1. fq.close() — Tail's bit 63 — makes every new enqueue ticket
//      abort with kClosed before touching an entry.
//   2. fq.drain_idx() burns head tickets past every position a
//      pre-close ticket could still install at (SCQ's threshold-spent
//      kEmpty does NOT imply head >= tail, so an in-flight pre-close
//      enqueue could otherwise install into a retired segment and the
//      value would vanish). A drained value is simply this dequeue's
//      result; kEmpty from drain is a sterility certificate.
//   3. Only a sterile segment is unlinked and retired through the
//      shared SMR domain (wcq/smr.hpp) under the caller's hazard
//      pointer — the same discipline as lcrq.hpp, which keeps the
//      parked-segment count bounded by the amnesty threshold.
//
// A pusher whose fq enqueue hits kClosed abandons its free index in
// the dying segment (the value was never visible, the index dies with
// the segment's allocation) and retries on the current list tail.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/scq_ring.hpp"
#include "wcq/smr.hpp"

namespace wcq {

class LscqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned order = 16;  // 2^order values per segment
    bool remap = true;
    bool portable = false;
    unsigned max_threads = 128;
    unsigned retire_threshold = 0;  // 0 = auto (see wcq/smr.hpp)
  };

  using Handle = RegistryHandle<LscqQueue>;

  explicit LscqQueue(const Config& cfg)
      : order_(check_order(cfg.order)),
        n_(std::uint64_t{1} << order_),
        remap_(cfg.remap),
        portable_(cfg.portable),
        slots_(cfg.max_threads ? cfg.max_threads : 1),
        smr_(slots_.capacity(), cfg.retire_threshold) {
    Segment* s = new_segment();
    head_.store(s, std::memory_order_relaxed);
    tail_.store(s, std::memory_order_relaxed);
  }

  explicit LscqQueue(const options& opt)
      : LscqQueue(Config{opt.order(), opt.remap(), opt.portable(),
                         opt.max_threads(), opt.retire_threshold()}) {}

  ~LscqQueue() {
    assert(slots_.live() == 0 &&
           "lscq: a Handle is outliving its queue (use-after-free ahead)");
    // head_ anchors every live segment; retired ones are freed by the
    // domain's destructor.
    Segment* s = head_.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      free_segment(this, s);
      s = next;
    }
  }

  LscqQueue(const LscqQueue&) = delete;
  LscqQueue& operator=(const LscqQueue&) = delete;

  std::optional<Handle> try_get_handle() {
    const unsigned slot = slots_.acquire();
    if (slot == SlotRegistry::kNone) return std::nullopt;
    return Handle(this, slot);
  }

  Handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "lscq: all max_threads handle slots are simultaneously live");
    }
    return std::move(*h);
  }

  // Succeeds for every value (unbounded: a full or closed segment is
  // succeeded by a fresh one).
  bool try_push(std::uint64_t v, Handle& h) {
    const unsigned slot = h.slot();
    for (;;) {
      // The hazard keeps the segment alive across its ring ops even if
      // dequeuers drain and retire it meanwhile.
      Segment* s = smr_.protect(slot, 0, tail_);
      if (Segment* next = s->next.load(std::memory_order_acquire)) {
        // Someone already appended; help swing tail and retry there.
        tail_.compare_exchange_strong(s, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      if (seg_push(s, v)) return true;
      // Segment full or closed. Seed a fresh segment with the value
      // (its rings are empty and open, so this cannot fail) and link.
      Segment* fresh = new_segment();
      const bool seeded = seg_push(fresh, v);
      assert(seeded && "push on a fresh segment cannot fail");
      (void)seeded;
      Segment* expected = nullptr;
      if (s->next.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        tail_.compare_exchange_strong(s, fresh, std::memory_order_release,
                                      std::memory_order_relaxed);
        return true;
      }
      free_segment(this, fresh);  // lost the append race; nobody saw ours
    }
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle& h) {
    const unsigned slot = h.slot();
    for (;;) {
      Segment* s = smr_.protect(slot, 0, head_);
      if (seg_pop(s, v)) return true;
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;  // no successor: truly empty
      // A successor exists, so this segment takes no new values —
      // finalize it: close, then sweep the surviving pre-close
      // tickets. A swept value is our result; sterility lets the
      // segment retire.
      s->fq.close();
      std::uint64_t idx = 0;
      if (s->fq.drain_idx(&idx) == FinalScqRing::kOk) {
        *v = s->data()[idx].load(std::memory_order_relaxed);
        return true;
      }
      Segment* expected = s;
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        smr_.retire(slot, s, &free_segment_erased, this);
      }
    }
  }

  smr::Stats smr_stats() const { return smr_.stats(); }

  unsigned ring_order() const { return order_; }

 private:
  friend class RegistryHandle<LscqQueue>;

  void release_slot(unsigned slot) {
    smr_.quiesce(slot);
    slots_.release(slot);
  }

  // One list node: a bounded two-ring SCQ whose value ring (fq) is
  // finalizable. The data array lives in trailing storage.
  struct Segment {
    Segment(unsigned order, bool remap, bool portable)
        : aq(order, remap, portable), fq(order, remap, portable) {}

    alignas(detail::kNoFalseSharing) std::atomic<Segment*> next{nullptr};
    ScqRing aq;       // free slots (starts full)
    FinalScqRing fq;  // filled slots (starts empty, closable)
    std::atomic<std::uint64_t>* data() {
      return reinterpret_cast<std::atomic<std::uint64_t>*>(this + 1);
    }
  };

  // Push into one segment. False iff the segment can take no more
  // values: free-index ring exhausted (full) or value ring closed.
  bool seg_push(Segment* s, std::uint64_t v) {
    std::uint64_t idx = 0;
    if (s->aq.dequeue_idx(&idx, ScqRing::kUnbounded) == ScqRing::kEmpty) {
      return false;  // no free slots: full
    }
    s->data()[idx].store(v, std::memory_order_relaxed);
    if (s->fq.enqueue_idx(idx, FinalScqRing::kUnbounded) ==
        FinalScqRing::kClosed) {
      // The value was never visible; the index dies with the segment.
      return false;
    }
    return true;
  }

  bool seg_pop(Segment* s, std::uint64_t* v) {
    std::uint64_t idx = 0;
    if (s->fq.dequeue_idx(&idx, FinalScqRing::kUnbounded) ==
        FinalScqRing::kEmpty) {
      return false;
    }
    *v = s->data()[idx].load(std::memory_order_relaxed);
    s->aq.enqueue_idx(idx, ScqRing::kUnbounded);
    return true;
  }

  static unsigned check_order(unsigned order) {
    if (order > 20) {
      throw std::invalid_argument("lscq: segment order exceeds 20");
    }
    return order;
  }

  std::size_t seg_bytes() const {
    return sizeof(Segment) + n_ * sizeof(std::atomic<std::uint64_t>);
  }

  Segment* new_segment() {
    void* raw = mem::alloc(seg_bytes());
    Segment* s = new (raw) Segment(order_, remap_, portable_);
    std::atomic<std::uint64_t>* data = s->data();
    for (std::uint64_t i = 0; i < n_; ++i) {
      new (&data[i]) std::atomic<std::uint64_t>(0);
      s->aq.enqueue_idx(i, ScqRing::kUnbounded);
    }
    return s;
  }

  static void free_segment(LscqQueue* q, Segment* s) {
    s->~Segment();
    mem::free(s, q->seg_bytes());
  }

  static void free_segment_erased(void* p, void* ctx) {
    free_segment(static_cast<LscqQueue*>(ctx), static_cast<Segment*>(p));
  }

  const unsigned order_;
  const std::uint64_t n_;
  const bool remap_;
  const bool portable_;

  alignas(detail::kNoFalseSharing) std::atomic<Segment*> head_{nullptr};
  alignas(detail::kNoFalseSharing) std::atomic<Segment*> tail_{nullptr};
  SlotRegistry slots_;
  smr::Domain smr_;
};

}  // namespace wcq
