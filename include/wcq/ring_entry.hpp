// Entry codecs — the storage layer of the ring kernel. A ring variant
// picks the entry shape its protocol needs; everything above (cycle
// arithmetic, threshold, helping) is agnostic to it:
//
//   PlainEntry   one 64-bit packed word [cycle | safe | index] — SCQ,
//                NCQ, and the LSCQ segment rings.
//   NotedEntry   {word, note} mutated together by CAS2 — the wCQ ring.
//                The note word parks revocable claims / committed
//                results of the cooperative slow path.
//   SplitEntry   {meta, idx} mutated together by CAS2 — CCQ, where the
//                index is a full 64-bit word instead of being packed
//                into the cycle word (meta = [cycle | safe]). This is
//                the variant that shows what SCQ's packing buys: CCQ
//                must pay double-width CAS for the same state machine.
//
// The two-word codecs are accessed both as two separate
// std::atomic<uint64_t> members and, through reinterpret_cast, as one
// detail::Pair for the 16-byte CAS — see the aliasing contract above
// detail::Pair. The static_asserts here pin the layout that contract
// relies on; they lived in scq_ring.hpp before the kernel split.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "wcq/detail.hpp"

namespace wcq::ring {

struct PlainEntry {
  std::atomic<std::uint64_t> word;
};

struct alignas(16) NotedEntry {
  std::atomic<std::uint64_t> word;
  std::atomic<std::uint64_t> note;
};
static_assert(sizeof(NotedEntry) == sizeof(detail::Pair),
              "NotedEntry must be layout-interchangeable with Pair");
static_assert(offsetof(NotedEntry, word) == offsetof(detail::Pair, word) &&
              offsetof(NotedEntry, note) == offsetof(detail::Pair, note));

struct alignas(16) SplitEntry {
  std::atomic<std::uint64_t> meta;  // [cycle | is_safe (bit 0)]
  std::atomic<std::uint64_t> idx;   // full-word index; all-ones = BOT
};
static_assert(sizeof(SplitEntry) == sizeof(detail::Pair),
              "SplitEntry must be layout-interchangeable with Pair");
static_assert(offsetof(SplitEntry, meta) == offsetof(detail::Pair, word) &&
              offsetof(SplitEntry, idx) == offsetof(detail::Pair, note));

/// CAS2 over a two-word entry. `portable` selects the __atomic builtin
/// path (the paper's Section 4 portable-build posture, and the only
/// path TSan can instrument) over native cmpxchg16b.
template <typename TwoWordEntry>
inline bool pair_cas(TwoWordEntry* e, detail::Pair expected,
                     detail::Pair desired, bool portable) {
  detail::Pair* addr = reinterpret_cast<detail::Pair*>(e);
  return portable ? detail::cas2_portable(addr, &expected, desired)
                  : detail::cas2(addr, &expected, desired);
}

}  // namespace wcq::ring
