// CCQ — the CAS2-based circular queue (Nikolaev, DISC 2019, §1;
// wCQ's Figure 11 family plots). Exactly SCQ's state machine —
// threshold, safe bit, catchup, Cache_Remap — but the entry is a
// {meta, idx} SplitEntry pair mutated by double-width CAS: the index
// is a full 64-bit word instead of being packed beside the cycle.
// CCQ is what you build when indices don't fit the cycle word; SCQ's
// contribution is showing the packing makes CAS2 unnecessary. Keeping
// both in the lineup prices that difference: same protocol, twice the
// entry footprint, and every mutation pays cmpxchg16b.
//
// Composition: Geometry/Remap from ring_math.hpp (positions and
// cycles are identical to SCQ's), ScqThreshold from ring_policy.hpp,
// SplitEntry + pair_cas from ring_entry.hpp. meta packs
// [cycle | is_safe (bit 0)]; idx all-ones is BOT. The two words are
// read as separate 64-bit atomics; a torn {meta, idx} snapshot is
// benign — every mutation goes through a CAS2 expecting the full pair
// (phantom snapshots fail it), and the no-CAS decisions either depend
// on meta alone or name a pair some real intermediate state exhibited
// within the read window.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "wcq/detail.hpp"
#include "wcq/handle.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/ring_entry.hpp"
#include "wcq/ring_math.hpp"
#include "wcq/ring_policy.hpp"

namespace wcq {

class CcqRing {
 public:
  enum Result : int {
    kOk = 0,
    kEmpty = 1,      // definitive: threshold spent or tail caught up
    kContended = 2,  // patience exhausted
  };

  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  CcqRing(unsigned order, bool remap, bool portable)
      : geo_(order),
        remap_(remap ? ring::Remap::cache(geo_, kLineBits)
                     : ring::Remap::identity(geo_)),
        portable_(portable),
        threshold_(geo_) {
    entries_ = static_cast<ring::SplitEntry*>(
        mem::alloc(geo_.ring_size() * sizeof(ring::SplitEntry)));
    for (std::uint64_t j = 0; j < geo_.ring_size(); ++j) {
      entries_[j].meta.store(pack_meta(0, true), std::memory_order_relaxed);
      entries_[j].idx.store(kBotIdx, std::memory_order_relaxed);
    }
    head_.store(geo_.ring_size(), std::memory_order_relaxed);
    tail_.store(geo_.ring_size(), std::memory_order_relaxed);
  }

  ~CcqRing() {
    mem::free(entries_, geo_.ring_size() * sizeof(ring::SplitEntry));
  }

  CcqRing(const CcqRing&) = delete;
  CcqRing& operator=(const CcqRing&) = delete;

  std::uint64_t capacity() const { return geo_.capacity(); }

  Result enqueue_idx(std::uint64_t eidx, std::uint64_t max_iters) {
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t tcycle = geo_.cycle_of_pos(t);
      const std::uint64_t j = remap_.map(t);
      for (;;) {
        const std::uint64_t m =
            entries_[j].meta.load(std::memory_order_acquire);
        const std::uint64_t i =
            entries_[j].idx.load(std::memory_order_acquire);
        if (meta_cycle(m) < tcycle && i == kBotIdx &&
            (meta_safe(m) ||
             head_.load(std::memory_order_seq_cst) <= t)) {
          if (!ring::pair_cas(&entries_[j], {m, i},
                              {pack_meta(tcycle, true), eidx}, portable_)) {
            continue;  // entry (or our snapshot) moved; re-evaluate
          }
          threshold_.arm();
          return kOk;
        }
        break;  // position unusable, take the next one
      }
    }
    return kContended;
  }

  Result dequeue_idx(std::uint64_t* out, std::uint64_t max_iters) {
    if (threshold_.spent()) return kEmpty;
    for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
      const std::uint64_t h = head_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t hcycle = geo_.cycle_of_pos(h);
      const std::uint64_t j = remap_.map(h);
      bool advanced = false;
      for (;;) {
        const std::uint64_t m =
            entries_[j].meta.load(std::memory_order_acquire);
        const std::uint64_t i =
            entries_[j].idx.load(std::memory_order_acquire);
        const std::uint64_t ecycle = meta_cycle(m);
        if (ecycle == hcycle && i != kBotIdx) {
          // Consume: index back to BOT, meta (cycle + safe) untouched.
          if (!ring::pair_cas(&entries_[j], {m, i}, {m, kBotIdx},
                              portable_)) {
            continue;
          }
          *out = i;
          return kOk;
        }
        if (ecycle < hcycle) {
          // Advance an empty entry's cycle, or mark a lagging value
          // unsafe so a slow enqueuer cannot resurrect it.
          const detail::Pair fresh =
              i == kBotIdx
                  ? detail::Pair{pack_meta(hcycle, meta_safe(m)), kBotIdx}
                  : detail::Pair{pack_meta(ecycle, false), i};
          if (!ring::pair_cas(&entries_[j], {m, i}, fresh, portable_)) {
            continue;
          }
        }
        advanced = true;
        break;
      }
      if (advanced) {
        const std::uint64_t t = tail_.load(std::memory_order_seq_cst);
        if (t <= h + 1) {
          catchup(t, h + 1);
          threshold_.spend();
          return kEmpty;
        }
        if (threshold_.spend()) return kEmpty;
      }
    }
    return kContended;
  }

 private:
  static constexpr std::uint64_t kBotIdx = ~std::uint64_t{0};

  static constexpr unsigned kLineBits =
      detail::log2_pow2(detail::kCacheLine / sizeof(ring::SplitEntry));

  static constexpr std::uint64_t pack_meta(std::uint64_t cycle, bool safe) {
    return (cycle << 1) | static_cast<std::uint64_t>(safe);
  }
  static constexpr std::uint64_t meta_cycle(std::uint64_t m) { return m >> 1; }
  static constexpr bool meta_safe(std::uint64_t m) { return (m & 1u) != 0; }

  void catchup(std::uint64_t t, std::uint64_t h) {
    while (!tail_.compare_exchange_weak(t, h, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      h = head_.load(std::memory_order_seq_cst);
      t = tail_.load(std::memory_order_seq_cst);
      if (t >= h) break;
    }
  }

  const ring::Geometry geo_;
  const ring::Remap remap_;
  const bool portable_;

  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{0};
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> tail_{0};
  alignas(detail::kNoFalseSharing) ring::ScqThreshold threshold_;
  alignas(detail::kNoFalseSharing) ring::SplitEntry* entries_ = nullptr;
};

// CCQ as a bounded MPMC queue of 64-bit values: the two-ring
// construction (indexes-only rings + data array), as for SCQ.
class CcqQueue {
 public:
  // Backend-internal configuration; the public surface is wcq::options.
  struct Config {
    unsigned order = 16;  // capacity = 2^order values
    bool remap = true;
    bool portable = false;  // __atomic CAS2 instead of cmpxchg16b
  };

  using Handle = TrivialHandle;

  explicit CcqQueue(const Config& cfg)
      : n_(std::uint64_t{1} << cfg.order),
        aq_(cfg.order, cfg.remap, cfg.portable),
        fq_(cfg.order, cfg.remap, cfg.portable) {
    data_ = static_cast<std::atomic<std::uint64_t>*>(
        mem::alloc(n_ * sizeof(std::atomic<std::uint64_t>)));
    for (std::uint64_t i = 0; i < n_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
      aq_.enqueue_idx(i, CcqRing::kUnbounded);
    }
  }

  explicit CcqQueue(const options& opt)
      : CcqQueue(Config{opt.order(), opt.remap(), opt.portable()}) {}

  ~CcqQueue() { mem::free(data_, n_ * sizeof(std::atomic<std::uint64_t>)); }

  CcqQueue(const CcqQueue&) = delete;
  CcqQueue& operator=(const CcqQueue&) = delete;

  std::uint64_t capacity() const { return n_; }

  Handle get_handle() { return Handle{}; }
  std::optional<Handle> try_get_handle() { return Handle{}; }

  // False iff the queue is full.
  bool try_push(std::uint64_t v, Handle&) {
    std::uint64_t idx = 0;
    if (aq_.dequeue_idx(&idx, CcqRing::kUnbounded) == CcqRing::kEmpty) {
      return false;  // no free slots: full
    }
    data_[idx].store(v, std::memory_order_relaxed);
    fq_.enqueue_idx(idx, CcqRing::kUnbounded);
    return true;
  }

  // False iff the queue is empty.
  bool try_pop(std::uint64_t* v, Handle&) {
    std::uint64_t idx = 0;
    if (fq_.dequeue_idx(&idx, CcqRing::kUnbounded) == CcqRing::kEmpty) {
      return false;
    }
    *v = data_[idx].load(std::memory_order_relaxed);
    aq_.enqueue_idx(idx, CcqRing::kUnbounded);
    return true;
  }

 private:
  const std::uint64_t n_;
  CcqRing aq_;  // free slots (starts full)
  CcqRing fq_;  // filled slots (starts empty)
  std::atomic<std::uint64_t>* data_ = nullptr;
};

}  // namespace wcq
