/// \file
/// `wcq::sharded<T, Backend>` — a queue-of-queues scaling layer.
///
/// One FAA-ticketed ring is the contention wall at high core counts:
/// every operation, from every core, meets at the same head/tail
/// cache lines. This layer puts an array of independent backend
/// instances (shards) behind the exact same `concepts::Queue` surface
/// the rest of the repo programs against, so it drops into every
/// test, bench, and adapter unchanged — the scaling decision becomes
/// a configuration knob (`options::shards`), not an API fork.
///
/// ## Ordering contract (read this before depending on FIFO)
///
/// Each shard is a FIFO queue; *cross-shard* ordering is relaxed.
/// Precisely: values a single handle pushes into the same shard are
/// dequeued from that shard in push order, but two values a producer
/// spreads over different shards may be observed by a consumer in
/// either order. Workloads needing a global order have two options:
/// one shard (`options::shards(1)` — the plain queue), or
/// `shard_policy::sequenced`, which serializes shard selection behind
/// a ticket lock to restore exact global FIFO — a test/debug mode,
/// deliberately not wait-free and not fast.
///
/// ## Pickers (`options::shard_policy`)
///
///  - `round_robin` (default): a per-handle cursor, advanced on every
///    successful op. Push and pop cursors of one handle start aligned,
///    so a single-threaded user still observes exact FIFO. On refusal
///    (shard full/empty) the op scans the remaining shards before
///    giving up, leaving the cursor untouched so the alignment
///    survives full/empty episodes.
///  - `sticky`: the handle has a home shard (its id modulo shards) per
///    direction and stays there — the zero-interference layout when
///    threads <= shards — rebalancing only when the home refuses:
///    push moves home on full, pop moves home on empty.
///  - `load_aware`: two-choice sampling over the layer's per-shard
///    occupancy estimates (push-successes minus pop-successes,
///    relaxed): push targets the emptier of two sampled shards, pop
///    the fuller. Falls back to a scan when the chosen shard refuses.
///  - `sequenced`: see above.
///
/// ## Batch API
///
/// `try_push_n`/`try_pop_n` amortize one shard selection (and, on
/// backends with a native burst — FaaQueue claims a run of tickets
/// with a single FAA — one ticket acquisition) over up to
/// `options::batch_limit` values per chunk. Values are encoded
/// through `slot_codec<T>`, so boxed payloads batch exactly like
/// inline ones.
///
/// ## Capacity
///
/// Total capacity stays `2^order` for bounded backends: the order is
/// split as `order - log2(shards)` per shard, so one options value
/// sizes sharded and unsharded queues identically. The constructor
/// throws `std::invalid_argument` when the split leaves a shard under
/// two slots, when `shards` is not a power of two, or when
/// `batch_limit` is zero (refuse, never silently clamp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "wcq/concepts.hpp"
#include "wcq/detail.hpp"
#include "wcq/mem.hpp"
#include "wcq/options.hpp"
#include "wcq/queue.hpp"
#include "wcq/wcq.hpp"

namespace wcq {

/// Sharded queue-of-queues over any concepts::Backend. Satisfies
/// concepts::Queue, so the whole harness accepts it as a lineup entry.
template <typename T, typename Backend = WcqQueue>
class sharded {
  static_assert(concepts::Backend<Backend>,
                "Backend must satisfy wcq::concepts::Backend "
                "(options ctor + Handle + try_push/try_pop over slots)");

 public:
  using value_type = T;
  using backend_type = Backend;
  using codec = slot_codec<T>;

  class handle;

  explicit sharded(const options& opt = options{})
      : nshards_(resolve_shards(opt.shards())),
        mask_(nshards_ - 1),
        policy_(opt.shard_policy()),
        batch_limit_(opt.batch_limit()) {
    if (batch_limit_ == 0) {
      throw std::invalid_argument("sharded: batch_limit must be >= 1");
    }
    unsigned shard_bits = 0;
    while ((1u << shard_bits) < nshards_) ++shard_bits;
    if (opt.order() <= shard_bits) {
      throw std::invalid_argument(
          "sharded: order must exceed log2(shards) — the per-shard "
          "split would leave rings under two slots");
    }
    options per_shard = opt;
    per_shard.order(opt.order() - shard_bits);
    shards_ = static_cast<Backend*>(mem::alloc(nshards_ * sizeof(Backend)));
    unsigned made = 0;
    try {
      for (; made < nshards_; ++made) {
        new (&shards_[made]) Backend(per_shard);
      }
    } catch (...) {
      while (made-- > 0) shards_[made].~Backend();
      mem::free(shards_, nshards_ * sizeof(Backend));
      throw;
    }
    loads_ = static_cast<ShardLoad*>(
        mem::alloc(nshards_ * sizeof(ShardLoad), alignof(ShardLoad)));
    for (unsigned s = 0; s < nshards_; ++s) new (&loads_[s]) ShardLoad();
  }

  ~sharded() {
    // Boxed values still parked in any shard own heap memory; reclaim
    // them before the shards tear down their rings.
    if constexpr (codec::kBoxed) {
      for (unsigned s = 0; s < nshards_; ++s) {
        auto h = shards_[s].try_get_handle();
        if (h) {
          std::uint64_t slot = 0;
          while (shards_[s].try_pop(&slot, *h)) codec::drop(slot);
        }
      }
    }
    for (unsigned s = 0; s < nshards_; ++s) loads_[s].~ShardLoad();
    mem::free(loads_, nshards_ * sizeof(ShardLoad), alignof(ShardLoad));
    for (unsigned s = 0; s < nshards_; ++s) shards_[s].~Backend();
    mem::free(shards_, nshards_ * sizeof(Backend));
  }

  sharded(const sharded&) = delete;
  sharded& operator=(const sharded&) = delete;

  /// RAII registration with EVERY shard (one backend handle each), so
  /// an op can land anywhere without a registration on its hot path.
  /// Move-only; must not outlive the sharded queue.
  class handle {
   public:
    handle() = delete;

    handle(handle&& o) noexcept
        : q_(std::exchange(o.q_, nullptr)),
          subs_(o.subs_),
          scratch_(o.scratch_),
          id_(o.id_),
          push_cur_(o.push_cur_),
          pop_cur_(o.pop_cur_),
          rng_(o.rng_) {}

    handle& operator=(handle&& o) noexcept {
      if (this != &o) {
        release();
        q_ = std::exchange(o.q_, nullptr);
        subs_ = o.subs_;
        scratch_ = o.scratch_;
        id_ = o.id_;
        push_cur_ = o.push_cur_;
        pop_cur_ = o.pop_cur_;
        rng_ = o.rng_;
      }
      return *this;
    }

    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;

    ~handle() { release(); }

   private:
    friend class sharded;
    using BackendHandle = typename Backend::Handle;

    handle(sharded* q, BackendHandle* subs, std::uint64_t* scratch,
           unsigned id)
        : q_(q),
          subs_(subs),
          scratch_(scratch),
          id_(id),
          push_cur_(id),
          pop_cur_(id),
          rng_(std::uint64_t{id} * 0x9e3779b97f4a7c15ull + 1) {}

    void release() {
      if (q_ != nullptr) {
        for (unsigned s = q_->nshards_; s-- > 0;) subs_[s].~BackendHandle();
        mem::free(subs_, q_->nshards_ * sizeof(BackendHandle));
        mem::free(scratch_, q_->batch_limit_ * sizeof(std::uint64_t));
        q_ = nullptr;
      }
    }

    sharded* q_ = nullptr;
    BackendHandle* subs_ = nullptr;
    std::uint64_t* scratch_ = nullptr;  // batch_limit slots
    unsigned id_ = 0;
    // round_robin cursor / sticky home, one per direction. Masked at
    // use; push and pop start aligned for single-handle FIFO.
    unsigned push_cur_ = 0;
    unsigned pop_cur_ = 0;
    std::uint64_t rng_ = 0;  // splitmix64 state (load_aware sampling)
  };

  /// nullopt iff some shard has all max_threads handle slots live.
  std::optional<handle> try_get_handle() {
    using BH = typename Backend::Handle;
    BH* subs = static_cast<BH*>(mem::alloc(nshards_ * sizeof(BH)));
    unsigned made = 0;
    for (; made < nshards_; ++made) {
      auto sub = shards_[made].try_get_handle();
      if (!sub) break;
      new (&subs[made]) BH(std::move(*sub));
    }
    if (made < nshards_) {
      while (made-- > 0) subs[made].~BH();
      mem::free(subs, nshards_ * sizeof(BH));
      return std::nullopt;
    }
    auto* scratch = static_cast<std::uint64_t*>(
        mem::alloc(batch_limit_ * sizeof(std::uint64_t)));
    return handle(this, subs, scratch,
                  next_handle_.fetch_add(1, std::memory_order_relaxed));
  }

  /// Throwing flavor for call sites where exhaustion is a logic error.
  handle get_handle() {
    auto h = try_get_handle();
    if (!h) {
      throw std::runtime_error(
          "sharded: a shard has all max_threads handle slots "
          "simultaneously live");
    }
    return std::move(*h);
  }

  /// False iff no shard accepts (all full, or the backend reserves
  /// the value's bit pattern — see queue.hpp's sentinel caveat).
  bool try_push(T v, handle& h) {
    const std::uint64_t slot = codec::encode(std::move(v));
    if (push_slot(slot, h)) return true;
    codec::drop(slot);
    return false;
  }

  /// nullopt iff every shard reports empty.
  std::optional<T> try_pop(handle& h) {
    std::uint64_t slot = 0;
    if (!pop_slot(&slot, h)) return std::nullopt;
    return codec::decode(slot);
  }

  /// Batch enqueue: vs[0..n) in order, one shard selection per
  /// batch_limit-sized chunk (plus the backend's native ticket burst
  /// where it has one). Returns the accepted count; stops early when
  /// no shard will take the next value (all full, or a reserved
  /// sentinel pattern — the refused value stays with the caller).
  std::size_t try_push_n(const T* vs, std::size_t n, handle& h) {
    std::size_t pushed = 0;
    while (pushed < n) {
      const std::size_t chunk =
          std::min<std::size_t>(batch_limit_, n - pushed);
      for (std::size_t i = 0; i < chunk; ++i) {
        h.scratch_[i] = codec::encode(vs[pushed + i]);
      }
      const std::size_t ok = push_slots(h.scratch_, chunk, h);
      for (std::size_t i = ok; i < chunk; ++i) codec::drop(h.scratch_[i]);
      pushed += ok;
      if (ok < chunk) break;
    }
    return pushed;
  }

  /// Batch dequeue into out[0..n): returns how many values arrived
  /// (zero iff every shard is empty). Values from one shard arrive in
  /// that shard's FIFO order; chunks may interleave shards.
  std::size_t try_pop_n(T* out, std::size_t n, handle& h) {
    std::size_t got = 0;
    while (got < n) {
      const std::size_t chunk = std::min<std::size_t>(batch_limit_, n - got);
      const std::size_t ok = pop_slots(h.scratch_, chunk, h);
      for (std::size_t i = 0; i < ok; ++i) {
        out[got + i] = codec::decode(h.scratch_[i]);
      }
      got += ok;
      if (ok < chunk) break;
    }
    return got;
  }

  unsigned shard_count() const { return nshards_; }

  /// Direct access to one shard (tests and benches; not a stable API).
  Backend& shard(unsigned s) { return shards_[s]; }

  /// Approximate occupancy of shard s: push successes minus pop
  /// successes, relaxed counters — the load_aware picker's signal.
  /// Transiently off by in-flight ops; exact once the queue is quiet.
  std::int64_t shard_load(unsigned s) const {
    return loads_[s].size.load(std::memory_order_relaxed);
  }

  /// Total capacity (bounded backends): the sum over shards, which by
  /// construction is 2^order.
  auto capacity() const
    requires requires(const Backend& b) { b.capacity(); }
  {
    decltype(shards_[0].capacity()) total = 0;
    for (unsigned s = 0; s < nshards_; ++s) total += shards_[s].capacity();
    return total;
  }

  /// Backend op counters summed over shards (observable backends).
  /// Named backend_stats, not stats: these count *backend* attempts —
  /// one sharded op that scans k shards performs k backend ops — so
  /// they are deliberately not drop-in comparable with a plain
  /// queue's stats().
  auto backend_stats() const
    requires requires(const Backend& b) {
      { b.stats().fast_enqueues } -> std::convertible_to<std::uint64_t>;
    }
  {
    auto total = shards_[0].stats();
    for (unsigned s = 1; s < nshards_; ++s) {
      const auto st = shards_[s].stats();
      total.fast_enqueues += st.fast_enqueues;
      total.slow_enqueues += st.slow_enqueues;
      total.fast_dequeues += st.fast_dequeues;
      total.slow_dequeues += st.slow_dequeues;
      total.helps += st.helps;
    }
    return total;
  }

  /// SMR retire/scan counters summed over shards (reclaiming
  /// backends).
  auto smr_stats() const
    requires requires(const Backend& b) { b.smr_stats(); }
  {
    auto total = shards_[0].smr_stats();
    for (unsigned s = 1; s < nshards_; ++s) {
      const auto st = shards_[s].smr_stats();
      total.retired_nodes += st.retired_nodes;
      total.reclaimed_nodes += st.reclaimed_nodes;
      total.retire_calls += st.retire_calls;
      total.scans += st.scans;
    }
    return total;
  }

 private:
  struct alignas(detail::kNoFalseSharing) ShardLoad {
    std::atomic<std::int64_t> size{0};
  };

  // Serializes one direction of the sequenced picker.
  class PickerLock {
   public:
    explicit PickerLock(std::atomic<bool>& l) : l_(l) {
      while (l_.exchange(true, std::memory_order_acquire)) {
        detail::cpu_pause();
      }
    }
    ~PickerLock() { l_.store(false, std::memory_order_release); }
    PickerLock(const PickerLock&) = delete;
    PickerLock& operator=(const PickerLock&) = delete;

   private:
    std::atomic<bool>& l_;
  };

  struct alignas(detail::kNoFalseSharing) SeqSide {
    std::atomic<bool> lock{false};
    std::uint64_t tick = 0;  // guarded by lock
  };

  // 0 = auto: a power of two derived from the machine — one shard per
  // ~4 cpus, capped at 8 (the topology-aware sweep in the benches
  // picks its own counts; this default just has to be sane anywhere).
  static unsigned resolve_shards(unsigned requested) {
    if (requested == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      if (hw == 0) hw = 1;
      unsigned want = hw / 4;
      if (want == 0) want = 1;
      if (want > 8) want = 8;
      unsigned p = 1;
      while (p * 2 <= want) p *= 2;
      return p;
    }
    if ((requested & (requested - 1)) != 0) {
      throw std::invalid_argument(
          "sharded: shards must be a power of two (the picker masks, "
          "never divides)");
    }
    if (requested > kMaxShards) {
      throw std::invalid_argument("sharded: shards exceeds 256");
    }
    return requested;
  }

  static constexpr unsigned kMaxShards = 256;

  unsigned sample(handle& h) const {
    h.rng_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = h.rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<unsigned>((z ^ (z >> 31))) & mask_;
  }

  bool push_at(unsigned s, std::uint64_t slot, handle& h) {
    if (!shards_[s].try_push(slot, h.subs_[s])) return false;
    loads_[s].size.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool pop_at(unsigned s, std::uint64_t* slot, handle& h) {
    if (!shards_[s].try_pop(slot, h.subs_[s])) return false;
    loads_[s].size.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  bool push_slot(std::uint64_t slot, handle& h) {
    switch (policy_) {
      case shard_policy::sequenced: {
        // Strict ticket order: the op is bound to its shard; a full
        // shard refuses rather than break the sequence. The ticket is
        // only consumed on success, so push k and pop k always meet
        // at the same shard.
        PickerLock g(seq_push_.lock);
        const unsigned s = static_cast<unsigned>(seq_push_.tick) & mask_;
        if (!push_at(s, slot, h)) return false;
        ++seq_push_.tick;
        return true;
      }
      case shard_policy::sticky: {
        const unsigned home = h.push_cur_ & mask_;
        if (push_at(home, slot, h)) return true;
        for (unsigned k = 1; k < nshards_; ++k) {
          const unsigned s = (home + k) & mask_;
          if (push_at(s, slot, h)) {
            h.push_cur_ = s;  // rebalance-on-full: adopt the new home
            return true;
          }
        }
        return false;
      }
      case shard_policy::load_aware: {
        const unsigned a = sample(h);
        const unsigned b = sample(h);
        const unsigned s = loads_[a].size.load(std::memory_order_relaxed) <=
                                   loads_[b].size.load(std::memory_order_relaxed)
                               ? a
                               : b;
        if (push_at(s, slot, h)) return true;
        for (unsigned k = 1; k < nshards_; ++k) {
          if (push_at((s + k) & mask_, slot, h)) return true;
        }
        return false;
      }
      case shard_policy::round_robin:
      default: {
        const unsigned c = h.push_cur_;
        for (unsigned k = 0; k < nshards_; ++k) {
          if (push_at((c + k) & mask_, slot, h)) {
            // Advance past the accepting shard; a fully-failed scan
            // leaves the cursor (and the push/pop alignment) alone.
            h.push_cur_ = c + k + 1;
            return true;
          }
        }
        return false;
      }
    }
  }

  bool pop_slot(std::uint64_t* slot, handle& h) {
    switch (policy_) {
      case shard_policy::sequenced: {
        PickerLock g(seq_pop_.lock);
        const unsigned s = static_cast<unsigned>(seq_pop_.tick) & mask_;
        if (!pop_at(s, slot, h)) return false;
        ++seq_pop_.tick;
        return true;
      }
      case shard_policy::sticky: {
        const unsigned home = h.pop_cur_ & mask_;
        if (pop_at(home, slot, h)) return true;
        for (unsigned k = 1; k < nshards_; ++k) {
          const unsigned s = (home + k) & mask_;
          if (pop_at(s, slot, h)) {
            h.pop_cur_ = s;  // rebalance-on-empty
            return true;
          }
        }
        return false;
      }
      case shard_policy::load_aware: {
        const unsigned a = sample(h);
        const unsigned b = sample(h);
        const unsigned s = loads_[a].size.load(std::memory_order_relaxed) >=
                                   loads_[b].size.load(std::memory_order_relaxed)
                               ? a
                               : b;
        if (pop_at(s, slot, h)) return true;
        for (unsigned k = 1; k < nshards_; ++k) {
          if (pop_at((s + k) & mask_, slot, h)) return true;
        }
        return false;
      }
      case shard_policy::round_robin:
      default: {
        const unsigned c = h.pop_cur_;
        for (unsigned k = 0; k < nshards_; ++k) {
          if (pop_at((c + k) & mask_, slot, h)) {
            h.pop_cur_ = c + k + 1;
            return true;
          }
        }
        return false;
      }
    }
  }

  // The shard a batch chunk should target, advancing picker state
  // once per CHUNK (that is the amortization): rr steps its cursor,
  // sticky stays home, load_aware re-samples.
  unsigned pick_push_shard(handle& h) {
    switch (policy_) {
      case shard_policy::sticky:
        return h.push_cur_ & mask_;
      case shard_policy::load_aware: {
        const unsigned a = sample(h);
        const unsigned b = sample(h);
        return loads_[a].size.load(std::memory_order_relaxed) <=
                       loads_[b].size.load(std::memory_order_relaxed)
                   ? a
                   : b;
      }
      default:
        return (h.push_cur_++) & mask_;
    }
  }

  unsigned pick_pop_shard(handle& h) {
    switch (policy_) {
      case shard_policy::sticky:
        return h.pop_cur_ & mask_;
      case shard_policy::load_aware: {
        const unsigned a = sample(h);
        const unsigned b = sample(h);
        return loads_[a].size.load(std::memory_order_relaxed) >=
                       loads_[b].size.load(std::memory_order_relaxed)
                   ? a
                   : b;
      }
      default:
        return (h.pop_cur_++) & mask_;
    }
  }

  // Push a run of encoded slots into shard s; native backend burst
  // when it exists, else a loop (same semantics, no ticket
  // amortization). Returns slots accepted.
  std::size_t shard_push_n(unsigned s, const std::uint64_t* slots,
                           std::size_t n, handle& h) {
    std::size_t ok = 0;
    if constexpr (requires {
                    {
                      shards_[s].try_push_n(slots, n, h.subs_[s])
                    } -> std::same_as<std::size_t>;
                  }) {
      ok = shards_[s].try_push_n(slots, n, h.subs_[s]);
    } else {
      while (ok < n && shards_[s].try_push(slots[ok], h.subs_[s])) ++ok;
    }
    if (ok > 0) {
      loads_[s].size.fetch_add(static_cast<std::int64_t>(ok),
                               std::memory_order_relaxed);
    }
    return ok;
  }

  std::size_t shard_pop_n(unsigned s, std::uint64_t* slots, std::size_t n,
                          handle& h) {
    std::size_t ok = 0;
    if constexpr (requires {
                    {
                      shards_[s].try_pop_n(slots, n, h.subs_[s])
                    } -> std::same_as<std::size_t>;
                  }) {
      ok = shards_[s].try_pop_n(slots, n, h.subs_[s]);
    } else {
      while (ok < n && shards_[s].try_pop(&slots[ok], h.subs_[s])) ++ok;
    }
    if (ok > 0) {
      loads_[s].size.fetch_sub(static_cast<std::int64_t>(ok),
                               std::memory_order_relaxed);
    }
    return ok;
  }

  // Slot-level batch push: one shard pick per chunk; when the picked
  // shard refuses mid-chunk, the refused slot is routed through the
  // scanning single-slot path (which also rebalances sticky homes),
  // and the remainder re-picks. Stops only on a global refusal.
  std::size_t push_slots(const std::uint64_t* slots, std::size_t n,
                         handle& h) {
    if (policy_ == shard_policy::sequenced) {
      std::size_t done = 0;
      while (done < n && push_slot(slots[done], h)) ++done;
      return done;
    }
    std::size_t done = 0;
    while (done < n) {
      const unsigned s = pick_push_shard(h);
      done += shard_push_n(s, slots + done, n - done, h);
      if (done == n) break;
      if (!push_slot(slots[done], h)) break;
      ++done;
    }
    return done;
  }

  std::size_t pop_slots(std::uint64_t* slots, std::size_t n, handle& h) {
    if (policy_ == shard_policy::sequenced) {
      std::size_t done = 0;
      while (done < n && pop_slot(&slots[done], h)) ++done;
      return done;
    }
    std::size_t done = 0;
    while (done < n) {
      const unsigned s = pick_pop_shard(h);
      done += shard_pop_n(s, slots + done, n - done, h);
      if (done == n) break;
      if (!pop_slot(&slots[done], h)) break;
      ++done;
    }
    return done;
  }

  const unsigned nshards_;
  const unsigned mask_;
  const shard_policy policy_;
  const unsigned batch_limit_;
  Backend* shards_ = nullptr;
  ShardLoad* loads_ = nullptr;
  std::atomic<unsigned> next_handle_{0};
  SeqSide seq_push_;
  SeqSide seq_pop_;
};

}  // namespace wcq
