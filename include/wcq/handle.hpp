// Per-thread handle machinery shared by every backend.
//
// SlotRegistry hands out slot indices in [0, capacity) and takes them
// back, so a queue's per-thread records (wCQ's ThreadRec) are a bound
// on *concurrent* participants, not on lifetime thread count. Without
// recycling, any thread-churn workload (a pool that retires workers, a
// server spawning a thread per connection wave) exhausts max_threads
// even though only a few threads are ever live at once.
//
// The free list is a Treiber stack of indices. ABA on the head is
// prevented with a 32-bit tag packed next to the 32-bit index; `next`
// links live in a side array so releasing a slot never touches the
// queue's own record (which a helper may still be scanning).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>

#include "wcq/mem.hpp"

namespace wcq {

// Empty per-thread state for backends that need none (SCQ/FAA/MSQ).
// Exists so every backend has the same {get_handle, try_push, try_pop}
// shape and the typed facade never special-cases.
struct TrivialHandle {};

class SlotRegistry {
 public:
  static constexpr unsigned kNone = 0xffffffffu;

  explicit SlotRegistry(unsigned capacity) : capacity_(capacity) {
    next_ = static_cast<std::atomic<unsigned>*>(
        mem::alloc(capacity_ * sizeof(std::atomic<unsigned>)));
    for (unsigned i = 0; i < capacity_; ++i) {
      new (&next_[i]) std::atomic<unsigned>(kNone);
    }
  }

  ~SlotRegistry() {
    for (unsigned i = 0; i < capacity_; ++i) next_[i].~atomic<unsigned>();
    mem::free(next_, capacity_ * sizeof(std::atomic<unsigned>));
  }

  SlotRegistry(const SlotRegistry&) = delete;
  SlotRegistry& operator=(const SlotRegistry&) = delete;

  // Returns a slot index, or kNone iff `capacity` slots are currently
  // live. Recycled slots are preferred over never-used ones so the
  // high-water mark (and any state scan over it) stays small.
  unsigned acquire() {
    if (const unsigned idx = pop_free(); idx != kNone) {
      live_.fetch_add(1, std::memory_order_acq_rel);
      return idx;
    }
    unsigned b = bump_.load(std::memory_order_acquire);
    while (b < capacity_) {
      if (bump_.compare_exchange_weak(b, b + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        live_.fetch_add(1, std::memory_order_acq_rel);
        return b;
      }
    }
    // Fresh slots ran out; a concurrent release may have refilled the
    // free list since the first look.
    if (const unsigned idx = pop_free(); idx != kNone) {
      live_.fetch_add(1, std::memory_order_acq_rel);
      return idx;
    }
    return kNone;
  }

  void release(unsigned slot) {
    live_.fetch_sub(1, std::memory_order_acq_rel);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[slot].store(static_cast<unsigned>(head & 0xffffffffu),
                        std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (tag << 32) | slot,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  // Slots ever handed out (monotone). Records in [0, high_water()) may
  // be live or recycled; anything beyond was never touched.
  unsigned high_water() const { return bump_.load(std::memory_order_acquire); }

  // Currently-acquired slot count. Zero at destruction time is the
  // owner's contract: every handle died before its queue.
  unsigned live() const { return live_.load(std::memory_order_acquire); }

  unsigned capacity() const { return capacity_; }

 private:
  unsigned pop_free() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const unsigned idx = static_cast<unsigned>(head & 0xffffffffu);
      if (idx == kNone) return kNone;
      const unsigned next = next_[idx].load(std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (tag << 32) | next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return idx;
      }
    }
  }

  const unsigned capacity_;
  std::atomic<unsigned>* next_ = nullptr;
  // {tag:32 | top index:32}; empty stack has index kNone.
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{
      (std::uint64_t{0} << 32) | kNone};
  alignas(detail::kNoFalseSharing) std::atomic<unsigned> bump_{0};
  alignas(detail::kNoFalseSharing) std::atomic<unsigned> live_{0};
};

}  // namespace wcq
