/// \file
/// Per-thread handle machinery shared by every backend.
///
/// SlotRegistry hands out slot indices in [0, capacity) and takes
/// them back, so a queue's per-thread records (wCQ's ThreadRec) are a
/// bound on *concurrent* participants, not on lifetime thread count.
/// Without recycling, any thread-churn workload (a pool that retires
/// workers, a server spawning a thread per connection wave) exhausts
/// max_threads even though only a few threads are ever live at once.
///
/// The free list is a Treiber stack of indices. ABA on the head is
/// prevented with a 32-bit tag packed next to the 32-bit index;
/// `next` links live in a side array so releasing a slot never
/// touches the queue's own record (which a helper may still be
/// scanning).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

#include "wcq/mem.hpp"

namespace wcq {

/// Empty per-thread state for backends that need none (SCQ, whose
/// rings are static and whose ops carry no thread identity). Exists
/// so every backend has the same {get_handle, try_push, try_pop}
/// shape and the typed facade never special-cases.
struct TrivialHandle {};

/// RAII handle over any SlotRegistry-backed backend: carries the
/// owning queue plus the slot index its per-thread state (hazard
/// pointers, epoch word, retire list — see wcq/smr.hpp) lives at.
/// Destruction calls Q::release_slot(slot), which quiesces the slot's
/// SMR state and returns it to the registry, so — exactly like wCQ's
/// ThreadRec handles — max_threads bounds *concurrent* participants.
/// A handle must not outlive its queue. MSQ, FAA, and LCRQ all use
/// this one template instead of hand-rolling three identical handles.
template <typename Q>
class RegistryHandle {
 public:
  RegistryHandle() = delete;

  RegistryHandle(RegistryHandle&& other) noexcept
      : q_(std::exchange(other.q_, nullptr)), slot_(other.slot_) {}

  RegistryHandle& operator=(RegistryHandle&& other) noexcept {
    if (this != &other) {
      release();
      q_ = std::exchange(other.q_, nullptr);
      slot_ = other.slot_;
    }
    return *this;
  }

  RegistryHandle(const RegistryHandle&) = delete;
  RegistryHandle& operator=(const RegistryHandle&) = delete;

  ~RegistryHandle() { release(); }

  unsigned slot() const { return slot_; }

 private:
  friend Q;
  RegistryHandle(Q* q, unsigned slot) : q_(q), slot_(slot) {}

  void release() {
    if (q_ != nullptr) {
      q_->release_slot(slot_);
      q_ = nullptr;
    }
  }

  Q* q_ = nullptr;
  unsigned slot_ = 0;
};

/// Lock-free index allocator behind every backend's handle slots:
/// acquire() prefers recycled indices (keeping the high-water mark —
/// and any state scan over it — small), release() pushes them back on
/// a tagged Treiber stack.
class SlotRegistry {
 public:
  static constexpr unsigned kNone = 0xffffffffu;

  explicit SlotRegistry(unsigned capacity) : capacity_(capacity) {
    next_ = static_cast<std::atomic<unsigned>*>(
        mem::alloc(capacity_ * sizeof(std::atomic<unsigned>)));
    for (unsigned i = 0; i < capacity_; ++i) {
      new (&next_[i]) std::atomic<unsigned>(kNone);
    }
  }

  ~SlotRegistry() {
    for (unsigned i = 0; i < capacity_; ++i) next_[i].~atomic<unsigned>();
    mem::free(next_, capacity_ * sizeof(std::atomic<unsigned>));
  }

  SlotRegistry(const SlotRegistry&) = delete;
  SlotRegistry& operator=(const SlotRegistry&) = delete;

  /// Returns a slot index, or kNone iff `capacity` slots are
  /// currently live. Recycled slots are preferred over never-used
  /// ones so the high-water mark (and any state scan over it) stays
  /// small.
  unsigned acquire() {
    if (const unsigned idx = pop_free(); idx != kNone) {
      live_.fetch_add(1, std::memory_order_acq_rel);
      return idx;
    }
    unsigned b = bump_.load(std::memory_order_acquire);
    while (b < capacity_) {
      if (bump_.compare_exchange_weak(b, b + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        live_.fetch_add(1, std::memory_order_acq_rel);
        return b;
      }
    }
    // Fresh slots ran out; a concurrent release may have refilled the
    // free list since the first look.
    if (const unsigned idx = pop_free(); idx != kNone) {
      live_.fetch_add(1, std::memory_order_acq_rel);
      return idx;
    }
    return kNone;
  }

  void release(unsigned slot) {
    live_.fetch_sub(1, std::memory_order_acq_rel);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[slot].store(static_cast<unsigned>(head & 0xffffffffu),
                        std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (tag << 32) | slot,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Slots ever handed out (monotone). Records in [0, high_water())
  /// may be live or recycled; anything beyond was never touched.
  unsigned high_water() const { return bump_.load(std::memory_order_acquire); }

  /// Currently-acquired slot count. Zero at destruction time is the
  /// owner's contract: every handle died before its queue.
  unsigned live() const { return live_.load(std::memory_order_acquire); }

  unsigned capacity() const { return capacity_; }

 private:
  unsigned pop_free() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const unsigned idx = static_cast<unsigned>(head & 0xffffffffu);
      if (idx == kNone) return kNone;
      const unsigned next = next_[idx].load(std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (tag << 32) | next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return idx;
      }
    }
  }

  const unsigned capacity_;
  std::atomic<unsigned>* next_ = nullptr;
  // {tag:32 | top index:32}; empty stack has index kNone.
  alignas(detail::kNoFalseSharing) std::atomic<std::uint64_t> head_{
      (std::uint64_t{0} << 32) | kNone};
  alignas(detail::kNoFalseSharing) std::atomic<unsigned> bump_{0};
  alignas(detail::kNoFalseSharing) std::atomic<unsigned> live_{0};
};

}  // namespace wcq
