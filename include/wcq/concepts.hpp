/// \file
/// The one Queue concept the whole repo programs against.
///
/// Two layers, two concepts:
///  - concepts::Backend is the raw 64-bit-slot surface every queue
///    implementation (wCQ, SCQ, FAA, MSQ, LCRQ, ...) exposes;
///    `wcq::queue<T, B>` requires it of its B parameter.
///  - concepts::Queue is the typed facade surface (try_push(T),
///    try_pop() returning `optional<T>`, RAII handles); the harness
///    and the test battery constrain on it, so adding a lineup entry
///    is "satisfy the concept", not "match a duck-typed adapter by
///    hand".
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>

#include "wcq/options.hpp"

namespace wcq::concepts {

/// Raw backend: options-constructible, per-thread Handle (possibly
/// empty), bool try_push/try_pop over 64-bit slots. try_get_handle
/// reports exhaustion as nullopt instead of failing.
template <typename B>
concept Backend =
    std::constructible_from<B, const wcq::options&> &&
    requires(B& b, typename B::Handle& h, std::uint64_t v, std::uint64_t* out) {
      typename B::Handle;
      { b.get_handle() } -> std::same_as<typename B::Handle>;
      { b.try_get_handle() } -> std::same_as<std::optional<typename B::Handle>>;
      { b.try_push(v, h) } -> std::same_as<bool>;
      { b.try_pop(out, h) } -> std::same_as<bool>;
    };

/// Typed queue facade: what workloads, tests, and benches see.
template <typename Q>
concept Queue =
    std::constructible_from<Q, const wcq::options&> &&
    requires(Q& q, typename Q::handle& h, const typename Q::value_type& v) {
      typename Q::value_type;
      typename Q::handle;
      { q.get_handle() } -> std::same_as<typename Q::handle>;
      { q.try_get_handle() } -> std::same_as<std::optional<typename Q::handle>>;
      { q.try_push(v, h) } -> std::same_as<bool>;
      { q.try_pop(h) } -> std::same_as<std::optional<typename Q::value_type>>;
    };

/// Queue over a backend that reclaims memory through the shared SMR
/// layer (wcq/smr.hpp): smr_stats() exposes the domain's retire/scan
/// counters. The memory bench and the SMR tests constrain on this to
/// assert bounded parked garbage without reaching into backend guts.
template <typename Q>
concept ReclaimingQueue =
    Queue<Q> && requires(const Q& q) {
      { q.smr_stats().retired_nodes } -> std::convertible_to<std::uint64_t>;
      { q.smr_stats().reclaimed_nodes } -> std::convertible_to<std::uint64_t>;
      { q.smr_stats().retire_calls } -> std::convertible_to<std::uint64_t>;
      { q.smr_stats().scans } -> std::convertible_to<std::uint64_t>;
    };

/// Queue with slow-path observability: stats() exposing fast/slow op
/// and help counters. The ablation benches constrain on this instead
/// of reaching into backend internals, so any future backend that
/// reports the same counters slots into those drivers unchanged.
template <typename Q>
concept ObservableQueue =
    Queue<Q> && requires(const Q& q) {
      { q.stats().fast_enqueues } -> std::convertible_to<std::uint64_t>;
      { q.stats().slow_enqueues } -> std::convertible_to<std::uint64_t>;
      { q.stats().fast_dequeues } -> std::convertible_to<std::uint64_t>;
      { q.stats().slow_dequeues } -> std::convertible_to<std::uint64_t>;
      { q.stats().helps } -> std::convertible_to<std::uint64_t>;
    };

}  // namespace wcq::concepts
