// Shared benchmark scaffolding: run one workload across the paper's
// queue lineup and thread sweep, print a figure-shaped table (+ CSV
// with --csv). Everything here is constrained on wcq::concepts::Queue,
// so a workload compiles against any lineup entry (or any future
// backend) without per-queue glue.
//
// Defaults are sized for small machines; the paper's exact methodology
// (10,000,000 ops x 10 runs, threads up to 144) is reproduced by
// setting WCQ_BENCH_OPS=10000000 WCQ_BENCH_RUNS=10 and
// WCQ_BENCH_THREADS=1,2,4,8,18,36,72,144 in the environment.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/spin.hpp"
#include "harness/driver.hpp"
#include "harness/queue_adapters.hpp"
#include "harness/reporting.hpp"
#include "wcq/concepts.hpp"

namespace wcq::bench {

inline std::uint64_t default_ops() {
  if (const char* v = std::getenv("WCQ_BENCH_OPS"); v && *v) {
    return std::strtoull(v, nullptr, 10);
  }
  return 1'000'000;  // paper: 10'000'000
}

inline unsigned default_runs() {
  if (const char* v = std::getenv("WCQ_BENCH_RUNS"); v && *v) {
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  return 3;  // paper: 10
}

inline std::vector<unsigned> default_threads() {
  if (std::getenv("WCQ_BENCH_THREADS")) {
    return harness::sweep_thread_counts();
  }
  return {1, 2, 4, 8};  // paper: 1,2,4,8,18,36,72,144
}

// Per-thread benchmark body: given (queue, handle, rng, ops) perform
// `ops` queue operations.
template <concepts::Queue Q>
using Workload = std::function<void(Q&, typename Q::handle&, Xoshiro256&,
                                    std::uint64_t)>;

// Measure one queue type over the thread sweep; adds one series.
template <concepts::Queue Q>
void run_series(harness::SeriesTable& table, const Workload<Q>& workload,
                const std::vector<unsigned>& threads_sweep,
                std::uint64_t total_ops, unsigned runs,
                const options& base_opts = options{}) {
  for (unsigned threads : threads_sweep) {
    options opts = base_opts;
    opts.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    const std::uint64_t ops_per_thread = total_ops / threads;
    auto setup = [&] { q = std::make_unique<Q>(opts); };
    auto body = [&](unsigned worker) {
      auto handle = q->get_handle();
      Xoshiro256 rng(0x1234u + worker * 7919u);
      workload(*q, handle, rng, ops_per_thread);
    };
    const auto res = harness::repeat_measure(runs, threads,
                                             ops_per_thread * threads,
                                             setup, body);
    table.set(Q::kName, threads, res.mean_mops);
    std::cerr << "  " << Q::kName << " @" << threads << ": "
              << res.mean_mops << " Mops/s (cv " << res.cv << ")\n";
  }
}

// The paper's full lineup, in its legend order.
template <typename MakeWorkload>
void run_all_queues(harness::SeriesTable& table, MakeWorkload make,
                    const std::vector<unsigned>& threads,
                    std::uint64_t total_ops, unsigned runs) {
  run_series<harness::FaaAdapter>(table, make.template operator()<harness::FaaAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::WcqAdapter>(table, make.template operator()<harness::WcqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::YmcAdapter>(table, make.template operator()<harness::YmcAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::CcqAdapter>(table, make.template operator()<harness::CcqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::ScqAdapter>(table, make.template operator()<harness::ScqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::CrTurnAdapter>(
      table, make.template operator()<harness::CrTurnAdapter>(), threads,
      total_ops, runs);
  run_series<harness::MsqAdapter>(table, make.template operator()<harness::MsqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::LcrqAdapter>(table, make.template operator()<harness::LcrqAdapter>(),
                                   threads, total_ops, runs);
}

// ---- the three workloads of Figures 11/12 ----

// (a) Dequeue in a tight loop on an always-empty queue.
template <concepts::Queue Q>
Workload<Q> empty_dequeue_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256&, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)q.try_pop(h);
    }
  };
}

// (b) Pairwise: Enqueue immediately followed by Dequeue.
template <concepts::Queue Q>
Workload<Q> pairwise_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256&, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops / 2; ++i) {
      while (!q.try_push(i & 0xffff, h)) {
      }
      (void)q.try_pop(h);
    }
  };
}

// (c) 50%/50% random mix.
template <concepts::Queue Q>
Workload<Q> mixed_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256& rng,
            std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (rng.chance_pct(50)) {
        while (!q.try_push(i & 0xffff, h)) {
          if (!q.try_pop(h)) break;  // bounded queue full: make room
        }
      } else {
        (void)q.try_pop(h);
      }
    }
  };
}

// Memory test workload (Figure 10): random mix with tiny random delays
// between operations, which the paper found amplifies memory artifacts.
template <concepts::Queue Q>
Workload<Q> memory_test_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256& rng,
            std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (rng.chance_pct(50)) {
        while (!q.try_push(i & 0xffff, h)) {
          if (!q.try_pop(h)) break;
        }
      } else {
        (void)q.try_pop(h);
      }
      spin_delay(rng.next_below(32));
    }
  };
}

// Slow-path observability for the ablation drivers, constrained on the
// ObservableQueue refinement (no reaching into backend internals).
template <concepts::ObservableQueue Q>
double slow_per_1k_ops(const Q& q, std::uint64_t total_ops) {
  const auto st = q.stats();
  return 1000.0 *
         static_cast<double>(st.slow_enqueues + st.slow_dequeues) /
         static_cast<double>(total_ops);
}

template <concepts::ObservableQueue Q>
double helps_per_1k_ops(const Q& q, std::uint64_t total_ops) {
  return 1000.0 * static_cast<double>(q.stats().helps) /
         static_cast<double>(total_ops);
}

inline void emit(const harness::SeriesTable& table, int argc, char** argv) {
  table.print(std::cout);
  if (harness::want_csv(argc, argv)) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
}

}  // namespace wcq::bench
