// Shared benchmark scaffolding: run one workload across the paper's
// queue lineup and thread sweep, print a figure-shaped table (+ CSV
// with --csv). Everything here is constrained on wcq::concepts::Queue,
// so a workload compiles against any lineup entry (or any future
// backend) without per-queue glue.
//
// Defaults are sized for small machines; the paper's exact methodology
// (10,000,000 ops x 10 runs, threads up to 144) is reproduced by
// setting WCQ_BENCH_OPS=10000000 WCQ_BENCH_RUNS=10 and
// WCQ_BENCH_THREADS=1,2,4,8,18,36,72,144 in the environment.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/spin.hpp"
#include "harness/driver.hpp"
#include "harness/latency.hpp"
#include "harness/queue_adapters.hpp"
#include "harness/reporting.hpp"
#include "wcq/concepts.hpp"

namespace wcq::bench {

inline std::uint64_t default_ops() {
  if (const char* v = std::getenv("WCQ_BENCH_OPS"); v && *v) {
    return std::strtoull(v, nullptr, 10);
  }
  return 1'000'000;  // paper: 10'000'000
}

inline unsigned default_runs() {
  if (const char* v = std::getenv("WCQ_BENCH_RUNS"); v && *v) {
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  return 3;  // paper: 10
}

inline std::vector<unsigned> default_threads() {
  if (std::getenv("WCQ_BENCH_THREADS")) {
    return harness::sweep_thread_counts();
  }
  return {1, 2, 4, 8};  // paper: 1,2,4,8,18,36,72,144
}

// Latency sampling period: 1 of every N ops is timed (N rounded to a
// power of two). 64 keeps the two clock reads' perturbation of a
// ~40 ns queue op in the low single-digit percent.
inline unsigned default_sample_period() {
  if (const char* v = std::getenv("WCQ_BENCH_SAMPLE"); v && *v) {
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  return 64;
}

// Open-loop offered rate, total ops/sec across all workers.
inline double default_rate_hz() {
  if (const char* v = std::getenv("WCQ_BENCH_RATE"); v && *v) {
    return std::strtod(v, nullptr);
  }
  return 1e6;
}

// Open-loop arrival process: Poisson (default) or fixed-interval.
inline bool default_poisson() {
  if (const char* v = std::getenv("WCQ_BENCH_ARRIVAL"); v && *v) {
    return std::strcmp(v, "fixed") != 0;
  }
  return true;
}

// Per-thread benchmark body: given (queue, handle, rng, ops) perform
// `ops` queue operations.
template <concepts::Queue Q>
using Workload = std::function<void(Q&, typename Q::handle&, Xoshiro256&,
                                    std::uint64_t)>;

// Latency-recording flavor: the workload additionally gets an
// OpSampler and times the ops it elects through harness::maybe_timed.
template <concepts::Queue Q>
using TimedWorkload =
    std::function<void(Q&, typename Q::handle&, Xoshiro256&, std::uint64_t,
                       harness::OpSampler&)>;

// Measure one queue type over the thread sweep; adds one series.
template <concepts::Queue Q>
void run_series(harness::SeriesTable& table, const Workload<Q>& workload,
                const std::vector<unsigned>& threads_sweep,
                std::uint64_t total_ops, unsigned runs,
                const options& base_opts = options{}) {
  for (unsigned threads : threads_sweep) {
    options opts = base_opts;
    opts.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    const std::uint64_t ops_per_thread = total_ops / threads;
    auto setup = [&] { q = std::make_unique<Q>(opts); };
    auto body = [&](unsigned worker) {
      auto handle = q->get_handle();
      Xoshiro256 rng(0x1234u + worker * 7919u);
      workload(*q, handle, rng, ops_per_thread);
    };
    const auto res = harness::repeat_measure(runs, threads,
                                             ops_per_thread * threads,
                                             setup, body);
    table.set(Q::kName, threads, res.mean_mops);
    std::cerr << "  " << Q::kName << " @" << threads << ": "
              << res.mean_mops << " Mops/s (cv " << res.cv << ")\n";
  }
}

// Latency-first variant of run_series: same sweep, but each worker
// samples per-op service latency into a private histogram and the
// table row carries throughput + percentiles.
template <concepts::Queue Q>
void run_series_latency(harness::MetricsTable& table,
                        const TimedWorkload<Q>& workload,
                        const std::vector<unsigned>& threads_sweep,
                        std::uint64_t total_ops, unsigned runs,
                        const options& base_opts = options{}) {
  const unsigned sample_period = default_sample_period();
  for (unsigned threads : threads_sweep) {
    options opts = base_opts;
    opts.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    const std::uint64_t ops_per_thread = total_ops / threads;
    auto setup = [&] { q = std::make_unique<Q>(opts); };
    auto body = [&](unsigned worker, harness::LatencyHistogram& hist) {
      auto handle = q->get_handle();
      Xoshiro256 rng(0x1234u + worker * 7919u);
      harness::OpSampler sampler(hist, sample_period);
      workload(*q, handle, rng, ops_per_thread, sampler);
    };
    const auto res = harness::repeat_measure_latency(
        runs, threads, ops_per_thread * threads, setup, body);
    table.set(Q::kName, threads,
              harness::OpMetrics{res.mean_mops, res.latency.p50(),
                                 res.latency.p99(), res.latency.p999(),
                                 res.latency.max()});
    std::cerr << "  " << Q::kName << " @" << threads << ": " << res.mean_mops
              << " Mops/s (cv " << res.cv << ", p50 " << res.latency.p50()
              << "ns p99 " << res.latency.p99() << "ns p99.9 "
              << res.latency.p999() << "ns)\n";
  }
}

// The paper's full lineup, in its legend order.
template <typename MakeWorkload>
void run_all_queues(harness::SeriesTable& table, MakeWorkload make,
                    const std::vector<unsigned>& threads,
                    std::uint64_t total_ops, unsigned runs) {
  run_series<harness::FaaAdapter>(table, make.template operator()<harness::FaaAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::WcqAdapter>(table, make.template operator()<harness::WcqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::YmcAdapter>(table, make.template operator()<harness::YmcAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::NcqAdapter>(table, make.template operator()<harness::NcqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::CcqAdapter>(table, make.template operator()<harness::CcqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::ScqAdapter>(table, make.template operator()<harness::ScqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::CrTurnAdapter>(
      table, make.template operator()<harness::CrTurnAdapter>(), threads,
      total_ops, runs);
  run_series<harness::MsqAdapter>(table, make.template operator()<harness::MsqAdapter>(),
                                  threads, total_ops, runs);
  run_series<harness::LcrqAdapter>(table, make.template operator()<harness::LcrqAdapter>(),
                                   threads, total_ops, runs);
  run_series<harness::LscqAdapter>(table, make.template operator()<harness::LscqAdapter>(),
                                   threads, total_ops, runs);
}

// Latency-first lineup sweep (same legend order).
template <typename MakeWorkload>
void run_all_queues_latency(harness::MetricsTable& table, MakeWorkload make,
                            const std::vector<unsigned>& threads,
                            std::uint64_t total_ops, unsigned runs) {
  run_series_latency<harness::FaaAdapter>(
      table, make.template operator()<harness::FaaAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::WcqAdapter>(
      table, make.template operator()<harness::WcqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::YmcAdapter>(
      table, make.template operator()<harness::YmcAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::NcqAdapter>(
      table, make.template operator()<harness::NcqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::CcqAdapter>(
      table, make.template operator()<harness::CcqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::ScqAdapter>(
      table, make.template operator()<harness::ScqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::CrTurnAdapter>(
      table, make.template operator()<harness::CrTurnAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::MsqAdapter>(
      table, make.template operator()<harness::MsqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::LcrqAdapter>(
      table, make.template operator()<harness::LcrqAdapter>(), threads,
      total_ops, runs);
  run_series_latency<harness::LscqAdapter>(
      table, make.template operator()<harness::LscqAdapter>(), threads,
      total_ops, runs);
}

// ---- the three workloads of Figures 11/12 ----

// (a) Dequeue in a tight loop on an always-empty queue.
template <concepts::Queue Q>
Workload<Q> empty_dequeue_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256&, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)q.try_pop(h);
    }
  };
}

// (b) Pairwise: Enqueue immediately followed by Dequeue.
template <concepts::Queue Q>
Workload<Q> pairwise_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256&, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops / 2; ++i) {
      while (!q.try_push(i & 0xffff, h)) {
      }
      (void)q.try_pop(h);
    }
  };
}

// (b') Pairwise with per-op latency sampling: push and pop are timed
// as separate operations, so the histogram is over single-op service
// time, not the pair.
template <concepts::Queue Q>
TimedWorkload<Q> pairwise_timed_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256&, std::uint64_t ops,
            harness::OpSampler& sampler) {
    for (std::uint64_t i = 0; i < ops / 2; ++i) {
      harness::maybe_timed(sampler, [&] {
        while (!q.try_push(i & 0xffff, h)) {
        }
      });
      harness::maybe_timed(sampler, [&] { (void)q.try_pop(h); });
    }
  };
}

// (c) 50%/50% random mix.
template <concepts::Queue Q>
Workload<Q> mixed_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256& rng,
            std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (rng.chance_pct(50)) {
        while (!q.try_push(i & 0xffff, h)) {
          if (!q.try_pop(h)) break;  // bounded queue full: make room
        }
      } else {
        (void)q.try_pop(h);
      }
    }
  };
}

// (c') 50%/50% random mix with per-op latency sampling.
template <concepts::Queue Q>
TimedWorkload<Q> mixed_timed_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256& rng, std::uint64_t ops,
            harness::OpSampler& sampler) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (rng.chance_pct(50)) {
        harness::maybe_timed(sampler, [&] {
          while (!q.try_push(i & 0xffff, h)) {
            if (!q.try_pop(h)) break;  // bounded queue full: make room
          }
        });
      } else {
        harness::maybe_timed(sampler, [&] { (void)q.try_pop(h); });
      }
    }
  };
}

// Memory test workload (Figure 10): random mix with tiny random delays
// between operations, which the paper found amplifies memory artifacts.
template <concepts::Queue Q>
Workload<Q> memory_test_workload() {
  return [](Q& q, typename Q::handle& h, Xoshiro256& rng,
            std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (rng.chance_pct(50)) {
        while (!q.try_push(i & 0xffff, h)) {
          if (!q.try_pop(h)) break;
        }
      } else {
        (void)q.try_pop(h);
      }
      spin_delay(rng.next_below(32));
    }
  };
}

// Slow-path observability for the ablation drivers, constrained on the
// ObservableQueue refinement (no reaching into backend internals).
template <concepts::ObservableQueue Q>
double slow_per_1k_ops(const Q& q, std::uint64_t total_ops) {
  const auto st = q.stats();
  return 1000.0 *
         static_cast<double>(st.slow_enqueues + st.slow_dequeues) /
         static_cast<double>(total_ops);
}

template <concepts::ObservableQueue Q>
double helps_per_1k_ops(const Q& q, std::uint64_t total_ops) {
  return 1000.0 * static_cast<double>(q.stats().helps) /
         static_cast<double>(total_ops);
}

inline void emit(const harness::SeriesTable& table, int argc, char** argv) {
  table.print(std::cout);
  if (harness::want_csv(argc, argv)) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
}

inline void emit_metrics(const harness::MetricsTable& table, int argc,
                         char** argv) {
  table.print(std::cout);
  if (harness::want_csv(argc, argv)) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
  if (harness::want_json(argc, argv)) {
    std::cout << "\n";
    table.print_json(std::cout);
  }
}

}  // namespace wcq::bench
