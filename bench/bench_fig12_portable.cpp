// Figure 12 (a,b,c) — the PowerPC experiments: empty-dequeue, pairwise
// and 50/50 throughput with the §4 portable wCQ build (no pointer-wide
// CAS2 on Head/Tail; split entry CAS2). LCRQ is absent, exactly as in
// the paper (it requires true CAS2 and cannot run on POWER).
//
// Substitution note (DESIGN.md §3): the POWER machine is stood in for
// by running the *portable algorithm* on x86 — the algorithmic
// differences of the LL/SC design are exercised; the ISA is not.
#include "bench_common.hpp"

namespace wcq::bench {
namespace {

template <typename MakeWorkload>
void run_fig12_queues(harness::SeriesTable& table, MakeWorkload make,
                      const std::vector<unsigned>& threads,
                      std::uint64_t total_ops, unsigned runs) {
  run_series<harness::FaaAdapter>(
      table, make.template operator()<harness::FaaAdapter>(), threads,
      total_ops, runs);
  run_series<harness::WcqPortableAdapter>(
      table, make.template operator()<harness::WcqPortableAdapter>(), threads,
      total_ops, runs);
  run_series<harness::YmcAdapter>(
      table, make.template operator()<harness::YmcAdapter>(), threads,
      total_ops, runs);
  run_series<harness::CcqAdapter>(
      table, make.template operator()<harness::CcqAdapter>(), threads,
      total_ops, runs);
  run_series<harness::ScqAdapter>(
      table, make.template operator()<harness::ScqAdapter>(), threads,
      total_ops, runs);
  run_series<harness::CrTurnAdapter>(
      table, make.template operator()<harness::CrTurnAdapter>(), threads,
      total_ops, runs);
  run_series<harness::MsqAdapter>(
      table, make.template operator()<harness::MsqAdapter>(), threads,
      total_ops, runs);
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  const auto threads = default_threads();
  const std::uint64_t ops = default_ops();
  const unsigned runs = default_runs();

  harness::SeriesTable fig_a("Figure 12a: empty Dequeue (portable/LLSC wCQ)",
                             "threads", "Mops/sec");
  auto make_a = []<typename A>() { return empty_dequeue_workload<A>(); };
  run_fig12_queues(fig_a, make_a, threads, ops, runs);
  emit(fig_a, argc, argv);

  harness::SeriesTable fig_b("Figure 12b: pairwise (portable/LLSC wCQ)",
                             "threads", "Mops/sec");
  auto make_b = []<typename A>() { return pairwise_workload<A>(); };
  run_fig12_queues(fig_b, make_b, threads, ops, runs);
  emit(fig_b, argc, argv);

  harness::SeriesTable fig_c("Figure 12c: 50%/50% (portable/LLSC wCQ)",
                             "threads", "Mops/sec");
  auto make_c = []<typename A>() { return mixed_workload<A>(); };
  run_fig12_queues(fig_c, make_c, threads, ops, runs);
  emit(fig_c, argc, argv);
  return 0;
}
