// Open-loop latency bench: arrival-rate-controlled load over the
// paper's queue lineup.
//
// Unlike the closed-loop figures (workers issue the next op the moment
// the previous returns, so the system always runs saturated and slow
// ops conveniently delay the offered load too — coordinated omission),
// each worker here follows its own arrival schedule at a fixed offered
// rate, independent of how fast the queue is. One arrival = one
// enqueue + one dequeue; its response time is measured from the
// *scheduled* arrival to completion, so pacer backlog (queueing delay)
// is charged to the op exactly like a latency SLO would charge it.
//
// Knobs (see docs/BENCHMARKING.md):
//   WCQ_BENCH_RATE     total offered ops/sec across workers (def 1e6)
//   WCQ_BENCH_ARRIVAL  poisson (default) | fixed
//   WCQ_BENCH_OPS      total arrivals per data point
//   WCQ_BENCH_THREADS / WCQ_BENCH_RUNS as everywhere else
#include "bench_common.hpp"

namespace wcq::bench {
namespace {

template <wcq::concepts::Queue Q>
void openloop_series(harness::MetricsTable& table,
                     const std::vector<unsigned>& sweep,
                     std::uint64_t total_arrivals, unsigned runs,
                     double total_rate_hz, bool poisson) {
  for (unsigned threads : sweep) {
    const wcq::options opts = wcq::options{}.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    std::vector<std::unique_ptr<typename Q::handle>> handles;
    const std::uint64_t per_thread = total_arrivals / threads;
    const double rate_per_thread = total_rate_hz / threads;
    auto setup = [&] {
      handles.clear();
      q = std::make_unique<Q>(opts);
      handles.resize(threads);
    };
    auto op = [&](unsigned worker) {
      // Handles are registered lazily on the worker's first arrival
      // (get_handle must run on the owning thread, not in setup).
      auto& h = handles[worker];
      if (!h) h = std::make_unique<typename Q::handle>(q->get_handle());
      while (!q->try_push(worker, *h)) {
        if (!q->try_pop(*h)) break;  // bounded queue full: make room
      }
      (void)q->try_pop(*h);
    };
    const auto res = harness::open_loop_measure(
        runs, threads, per_thread, rate_per_thread, poisson, setup, op);
    table.set(Q::kName, threads,
              harness::OpMetrics{res.achieved_mops, res.response.p50(),
                                 res.response.p99(), res.response.p999(),
                                 res.response.max()});
    std::cerr << "  " << Q::kName << " @" << threads << ": offered "
              << res.offered_mops << " Mops/s, achieved "
              << res.achieved_mops << " (start delay "
              << res.mean_start_delay_ns << "ns, response p50 "
              << res.response.p50() << "ns p99 " << res.response.p99()
              << "ns p99.9 " << res.response.p999() << "ns)\n";
  }
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  const double rate = default_rate_hz();
  const bool poisson = default_poisson();
  const auto sweep = default_threads();
  const std::uint64_t arrivals = default_ops();
  const unsigned runs = default_runs();

  harness::MetricsTable table(
      std::string("Open-loop response time (") +
          (poisson ? "poisson" : "fixed") + " arrivals)",
      "threads");
  std::cerr << "open-loop: " << rate << " ops/s offered total, " << arrivals
            << " arrivals/point\n";

  openloop_series<harness::FaaAdapter>(table, sweep, arrivals, runs, rate,
                                       poisson);
  openloop_series<harness::WcqAdapter>(table, sweep, arrivals, runs, rate,
                                       poisson);
  openloop_series<harness::ScqAdapter>(table, sweep, arrivals, runs, rate,
                                       poisson);
  openloop_series<harness::MsqAdapter>(table, sweep, arrivals, runs, rate,
                                       poisson);
  openloop_series<harness::LcrqAdapter>(table, sweep, arrivals, runs, rate,
                                        poisson);
  // The PR 9 scaling layer rides the same sweep: sharding should keep
  // response times flat as the offered load spreads over shards.
  openloop_series<harness::ShardedWcqAdapter>(table, sweep, arrivals, runs,
                                              rate, poisson);

  emit_metrics(table, argc, argv);
  return 0;
}
