// Figure 10 — the memory test: (a) memory consumed, (b) throughput.
// 50%/50% random operations with tiny random delays (the paper found
// the delays amplify memory-efficiency artifacts). Every queue routes
// its allocations through the counting allocator, so "memory consumed"
// is the peak live bytes the algorithm requested; a second table
// reports the kernel's peak RSS over the same run (rearmed per series
// via /proc/self/clear_refs) so allocator slack is visible too.
// Expected shape: LCRQ's closed-ring churn and FAA/YMC's segments now
// retire through the shared SMR layer, so their peaks track the
// *in-flight* rings/segments (bounded by the amnesty threshold) rather
// than growing with total ops the way the old leak-until-destructor
// behaviour did; MSQ likewise frees dequeued nodes as it goes. wCQ/SCQ
// stay at their statically allocated ring (~1-2 MB at the paper's
// 2^16-slot size).
#include <memory>

#include "bench_common.hpp"
#include "common/mem_stats.hpp"

namespace wcq::bench {
namespace {

template <wcq::concepts::Queue Q>
void memory_series(harness::SeriesTable& mem_table,
                   harness::SeriesTable& rss_table,
                   harness::SeriesTable& tput_table,
                   const std::vector<unsigned>& sweep,
                   std::uint64_t total_ops, unsigned runs) {
  auto workload = memory_test_workload<Q>();
  for (unsigned threads : sweep) {
    const wcq::options opts = wcq::options{}.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    const std::uint64_t per_thread = total_ops / threads;
    auto setup = [&] {
      q.reset();  // destroy previous instance first
      mem::reset();
      mem::reset_peak_rss();
      q = std::make_unique<Q>(opts);
    };
    auto body = [&](unsigned worker) {
      auto handle = q->get_handle();
      Xoshiro256 rng(0x9999u + worker * 31337u);
      workload(*q, handle, rng, per_thread);
    };
    const auto res =
        harness::repeat_measure(runs, threads, per_thread * threads, setup,
                                body);
    const double peak_mb =
        static_cast<double>(mem::stats().peak_bytes) / (1024.0 * 1024.0);
    const double rss_mb =
        static_cast<double>(mem::peak_rss_bytes()) / (1024.0 * 1024.0);
    mem_table.set(Q::kName, threads, peak_mb);
    rss_table.set(Q::kName, threads, rss_mb);
    tput_table.set(Q::kName, threads, res.mean_mops);
    std::cerr << "  " << Q::kName << " @" << threads << ": " << peak_mb
              << " MB peak (alloc), " << rss_mb << " MB peak (RSS), "
              << res.mean_mops << " Mops/s\n";
  }
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  harness::SeriesTable mem_table("Figure 10a: memory usage (allocator peak)",
                                 "threads", "MB peak");
  harness::SeriesTable rss_table("Figure 10a-rss: memory usage (peak RSS)",
                                 "threads", "MB peak RSS");
  harness::SeriesTable tput_table("Figure 10b: memory-test throughput",
                                  "threads", "Mops/sec");
  const auto sweep = default_threads();
  // The delay-laden workload is slower per op; trim the default.
  const std::uint64_t ops = default_ops() / 4;
  const unsigned runs = default_runs();

  if (!mem::reset_peak_rss()) {
    std::cerr << "note: /proc/self/clear_refs refused; peak-RSS column is "
                 "cumulative across series\n";
  }

  memory_series<harness::FaaAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::WcqAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::YmcAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::NcqAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::CcqAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::ScqAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::CrTurnAdapter>(mem_table, rss_table, tput_table,
                                        sweep, ops, runs);
  memory_series<harness::MsqAdapter>(mem_table, rss_table, tput_table, sweep,
                                     ops, runs);
  memory_series<harness::LcrqAdapter>(mem_table, rss_table, tput_table, sweep,
                                      ops, runs);
  memory_series<harness::LscqAdapter>(mem_table, rss_table, tput_table, sweep,
                                      ops, runs);

  emit(mem_table, argc, argv);
  emit(rss_table, argc, argv);
  emit(tput_table, argc, argv);
  return 0;
}
