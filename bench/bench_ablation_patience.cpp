// Ablation A1 — MAX_PATIENCE: how many fast-path attempts before the
// slow path. §6 of the paper sets 16 (enqueue) / 64 (dequeue) "which
// results in taking the slow path relatively infrequently"; this bench
// quantifies that choice: throughput and slow-path rate across
// patience values, under the pairwise and mixed workloads.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  const unsigned threads = default_threads().back();
  const std::uint64_t ops = default_ops();
  const unsigned runs = default_runs();

  harness::SeriesTable tput("Ablation A1: wCQ throughput vs MAX_PATIENCE",
                            "patience", "Mops/sec");
  harness::SeriesTable slows("Ablation A1: slow paths per 1k ops",
                             "patience", "slow/1k");

  for (unsigned patience : {1u, 4u, 16u, 64u, 256u}) {
    for (const bool pairwise : {true, false}) {
      const wcq::options cfg = wcq::options{}
                                   .max_threads(threads + 2)
                                   // keep the paper's 1:4 ratio
                                   .patience(patience, patience * 4);
      std::unique_ptr<harness::WcqAdapter> adapter;
      const std::uint64_t per_thread = ops / threads;
      auto wl_pair = pairwise_workload<harness::WcqAdapter>();
      auto wl_mix = mixed_workload<harness::WcqAdapter>();
      auto setup = [&] { adapter = std::make_unique<harness::WcqAdapter>(cfg); };
      auto body = [&](unsigned worker) {
        auto handle = adapter->get_handle();
        Xoshiro256 rng(0xabcu + worker);
        (pairwise ? wl_pair : wl_mix)(*adapter, handle, rng, per_thread);
      };
      const auto res = harness::repeat_measure(runs, threads,
                                               per_thread * threads, setup,
                                               body);
      const double slow_rate =
          slow_per_1k_ops(*adapter, per_thread * threads);
      const char* series = pairwise ? "pairwise" : "mixed";
      tput.set(series, patience, res.mean_mops);
      slows.set(series, patience, slow_rate);
      std::fprintf(stderr, "  patience=%u %s: %.2f Mops, %.3f slow/1k\n",
                   patience, series, res.mean_mops, slow_rate);
    }
  }
  emit(tput, argc, argv);
  emit(slows, argc, argv);
  return 0;
}
