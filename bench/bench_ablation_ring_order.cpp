// Ablation A4 — ring size (§6 uses 2^16-slot rings for wCQ/SCQ, and
// notes LCRQ-family rings need >= 2^12 cells "for better performance").
// Sweep the bounded-ring capacity order under the pairwise workload.
#include <cstdio>

#include "bench_common.hpp"

namespace wcq::bench {
namespace {

template <wcq::concepts::Queue Q>
void order_series(harness::SeriesTable& table, unsigned threads,
                  std::uint64_t ops, unsigned runs) {
  auto workload = pairwise_workload<Q>();
  for (unsigned order : {8u, 10u, 12u, 15u, 17u}) {
    const wcq::options cfg =
        wcq::options{}.max_threads(threads + 2).order(order);
    std::unique_ptr<Q> adapter;
    const std::uint64_t per_thread = ops / threads;
    auto setup = [&] { adapter = std::make_unique<Q>(cfg); };
    auto body = [&](unsigned worker) {
      auto handle = adapter->get_handle();
      Xoshiro256 rng(0x31415u + worker);
      workload(*adapter, handle, rng, per_thread);
    };
    const auto res = harness::repeat_measure(runs, threads,
                                             per_thread * threads, setup,
                                             body);
    table.set(Q::kName, order, res.mean_mops);
    std::fprintf(stderr, "  %s order=%u: %.2f Mops\n", Q::kName, order,
                 res.mean_mops);
  }
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  harness::SeriesTable table("Ablation A4: ring capacity order (pairwise)",
                             "capacity_order", "Mops/sec");
  const unsigned threads = default_threads().back();
  order_series<harness::WcqAdapter>(table, threads, default_ops(),
                                    default_runs());
  order_series<harness::ScqAdapter>(table, threads, default_ops(),
                                    default_runs());
  emit(table, argc, argv);
  return 0;
}
