// Ablation A3 — Cache_Remap (§2): the position permutation that puts
// adjacent ring slots on different cache lines. With it disabled,
// consecutive Head/Tail positions contend for the same line and
// throughput should drop under concurrency, for both wCQ and SCQ.
#include <cstdio>

#include "bench_common.hpp"

namespace wcq::bench {
namespace {

template <wcq::concepts::Queue Q>
void remap_series(harness::SeriesTable& table,
                  const std::vector<unsigned>& sweep, std::uint64_t ops,
                  unsigned runs, bool remap) {
  auto workload = pairwise_workload<Q>();
  const std::string series =
      std::string(Q::kName) + (remap ? "+remap" : "-remap");
  for (unsigned threads : sweep) {
    const wcq::options cfg =
        wcq::options{}.max_threads(threads + 2).remap(remap);
    std::unique_ptr<Q> adapter;
    const std::uint64_t per_thread = ops / threads;
    auto setup = [&] { adapter = std::make_unique<Q>(cfg); };
    auto body = [&](unsigned worker) {
      auto handle = adapter->get_handle();
      Xoshiro256 rng(0x777u + worker);
      workload(*adapter, handle, rng, per_thread);
    };
    const auto res = harness::repeat_measure(runs, threads,
                                             per_thread * threads, setup,
                                             body);
    table.set(series, threads, res.mean_mops);
    std::fprintf(stderr, "  %s @%u: %.2f Mops\n", series.c_str(), threads,
                 res.mean_mops);
  }
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  harness::SeriesTable table("Ablation A3: Cache_Remap on/off (pairwise)",
                             "threads", "Mops/sec");
  const auto sweep = default_threads();
  const std::uint64_t ops = default_ops();
  const unsigned runs = default_runs();
  remap_series<harness::WcqAdapter>(table, sweep, ops, runs, true);
  remap_series<harness::WcqAdapter>(table, sweep, ops, runs, false);
  remap_series<harness::ScqAdapter>(table, sweep, ops, runs, true);
  remap_series<harness::ScqAdapter>(table, sweep, ops, runs, false);
  emit(table, argc, argv);
  return 0;
}
