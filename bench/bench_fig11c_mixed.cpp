// Figure 11c — 50%/50% random Enqueue/Dequeue throughput, x86-64.
// The paper shows wCQ ≈ SCQ ≈ YMC, with wCQ slightly ahead of SCQ
// (larger entries reduce contention), LCRQ typically on top, the
// CAS-based queues far below.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  harness::SeriesTable table("Figure 11c: 50%/50% Enqueue-Dequeue",
                             "threads", "Mops/sec");
  auto make = []<typename A>() { return bench::mixed_workload<A>(); };
  bench::run_all_queues(table, make, bench::default_threads(),
                        bench::default_ops(), bench::default_runs());
  bench::emit(table, argc, argv);
  return 0;
}
