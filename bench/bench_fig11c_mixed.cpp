// Figure 11c — 50%/50% random Enqueue/Dequeue, x86-64, latency-first.
// The paper shows wCQ ≈ SCQ ≈ YMC, with wCQ slightly ahead of SCQ
// (larger entries reduce contention), LCRQ typically on top, the
// CAS-based queues far below. Rows carry throughput plus sampled
// per-op service-latency percentiles.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  harness::MetricsTable table("Figure 11c: 50%/50% Enqueue-Dequeue",
                              "threads");
  auto make = []<typename A>() { return bench::mixed_timed_workload<A>(); };
  bench::run_all_queues_latency(table, make, bench::default_threads(),
                                bench::default_ops(), bench::default_runs());
  bench::emit_metrics(table, argc, argv);
  return 0;
}
