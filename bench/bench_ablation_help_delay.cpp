// Ablation A2 — HELP_DELAY: every thread checks one peer for a pending
// help request each HELP_DELAY operations (§3.1 "to amortize the cost
// of help_threads"). Smaller values react to stuck threads faster but
// tax the fast path; this sweep quantifies the trade.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  const unsigned threads = default_threads().back();
  const std::uint64_t ops = default_ops();
  const unsigned runs = default_runs();

  harness::SeriesTable tput("Ablation A2: wCQ throughput vs HELP_DELAY",
                            "help_delay", "Mops/sec");
  harness::SeriesTable helps("Ablation A2: helps given per 1k ops",
                             "help_delay", "helps/1k");

  for (unsigned delay : {1u, 4u, 16u, 64u, 256u}) {
    const wcq::options cfg =
        wcq::options{}.max_threads(threads + 2).help_delay(delay);
    std::unique_ptr<harness::WcqAdapter> adapter;
    const std::uint64_t per_thread = ops / threads;
    auto workload = pairwise_workload<harness::WcqAdapter>();
    auto setup = [&] { adapter = std::make_unique<harness::WcqAdapter>(cfg); };
    auto body = [&](unsigned worker) {
      auto handle = adapter->get_handle();
      Xoshiro256 rng(0xdefu + worker);
      workload(*adapter, handle, rng, per_thread);
    };
    const auto res = harness::repeat_measure(runs, threads,
                                             per_thread * threads, setup,
                                             body);
    const double help_rate = helps_per_1k_ops(*adapter, per_thread * threads);
    tput.set("pairwise", delay, res.mean_mops);
    helps.set("pairwise", delay, help_rate);
    std::fprintf(stderr, "  help_delay=%u: %.2f Mops, %.3f helps/1k\n", delay,
                 res.mean_mops, help_rate);
  }
  emit(tput, argc, argv);
  emit(helps, argc, argv);
  return 0;
}
