// Shard-sweep scaling bench for wcq::sharded: pairwise throughput and
// service-time percentiles over shard counts x thread counts x
// pickers, against the single-ring baselines, plus an open-loop phase
// at a fixed offered rate (PR 8 methodology — response time measured
// from the scheduled arrival, so pacer backlog is charged like an SLO
// would charge it).
//
// Series named like "wCQ shard=4/rr" are the sharded layer over that
// backend; "wCQ" and "FAA" are the unsharded baselines. The "+batch"
// series drive the batch API (try_push_n/try_pop_n) with
// WCQ_BENCH_BATCH values per call — over FAA that is the native
// single-FAA ticket burst, the config the PR 9 acceptance criterion
// (>= 2x single-ring wCQ pairwise at max threads) is expected from.
//
// Knobs on top of the usual WCQ_BENCH_OPS/RUNS/THREADS/RATE/ARRIVAL:
//   WCQ_BENCH_SHARDS  comma list of shard counts (default "2,4", plus
//                     the topology recommendation when it differs)
//   WCQ_BENCH_BATCH   values per batch call (default 64)
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/topology.hpp"
#include "wcq/sharded.hpp"

namespace wcq::bench {
namespace {

std::vector<unsigned> shard_sweep() {
  std::vector<unsigned> out;
  if (const char* v = std::getenv("WCQ_BENCH_SHARDS"); v && *v) {
    for (const char* p = v; *p != '\0';) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(p, &end, 10);
      if (end == p) break;
      out.push_back(static_cast<unsigned>(n));
      p = *end == ',' ? end + 1 : end;
    }
  }
  if (out.empty()) {
    out = {2, 4};
    const unsigned rec = topo::recommended_shards();
    if (rec != 2 && rec != 4) out.push_back(rec);
  }
  return out;
}

unsigned batch_size() {
  if (const char* v = std::getenv("WCQ_BENCH_BATCH"); v && *v) {
    const unsigned n = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    if (n > 0) return n;
  }
  return 64;
}

// run_series_latency with an explicit series name: the sharded series
// are parameterized by shard count and picker, which a static kName
// cannot carry.
template <concepts::Queue Q>
void named_series_latency(harness::MetricsTable& table,
                          const std::string& name,
                          const TimedWorkload<Q>& workload,
                          const std::vector<unsigned>& threads_sweep,
                          std::uint64_t total_ops, unsigned runs,
                          const options& base_opts) {
  const unsigned sample_period = default_sample_period();
  for (unsigned threads : threads_sweep) {
    options opts = base_opts;
    opts.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    const std::uint64_t ops_per_thread = total_ops / threads;
    auto setup = [&] { q = std::make_unique<Q>(opts); };
    auto body = [&](unsigned worker, harness::LatencyHistogram& hist) {
      auto handle = q->get_handle();
      Xoshiro256 rng(0x1234u + worker * 7919u);
      harness::OpSampler sampler(hist, sample_period);
      workload(*q, handle, rng, ops_per_thread, sampler);
    };
    const auto res = harness::repeat_measure_latency(
        runs, threads, ops_per_thread * threads, setup, body);
    table.set(name, threads,
              harness::OpMetrics{res.mean_mops, res.latency.p50(),
                                 res.latency.p99(), res.latency.p999(),
                                 res.latency.max()});
    std::cerr << "  " << name << " @" << threads << ": " << res.mean_mops
              << " Mops/s (cv " << res.cv << ", p50 " << res.latency.p50()
              << "ns p99 " << res.latency.p99() << "ns)\n";
  }
}

// Pairwise through the batch API: one try_push_n + draining try_pop_n
// per `batch` values. The sampler times whole batch calls (they are
// the unit of work a batch user pays for); throughput is still
// reported per value, so batch and single-op series share an axis.
template <concepts::Queue Q>
TimedWorkload<Q> pairwise_batch_workload(unsigned batch) {
  return [batch](Q& q, typename Q::handle& h, Xoshiro256&,
                 std::uint64_t ops, harness::OpSampler& sampler) {
    std::vector<std::uint64_t> in(batch), out(batch);
    for (unsigned i = 0; i < batch; ++i) in[i] = i;
    for (std::uint64_t done = 0; done < ops / 2; done += batch) {
      harness::maybe_timed(sampler, [&] {
        std::size_t pushed = 0;
        while (pushed < batch) {
          pushed += q.try_push_n(in.data() + pushed, batch - pushed, h);
          if (pushed < batch) {
            // Bounded and full: make room like pairwise does.
            (void)q.try_pop_n(out.data(), batch - pushed, h);
          }
        }
      });
      harness::maybe_timed(sampler, [&] {
        std::size_t popped = 0;
        while (popped < batch) {
          const std::size_t k =
              q.try_pop_n(out.data() + popped, batch - popped, h);
          if (k == 0) break;  // another worker drained our values
          popped += k;
        }
      });
    }
  };
}

const char* policy_tag(shard_policy p) {
  switch (p) {
    case shard_policy::round_robin:
      return "rr";
    case shard_policy::sticky:
      return "sticky";
    case shard_policy::load_aware:
      return "load";
    case shard_policy::sequenced:
      return "seq";
  }
  return "?";
}

// Open-loop phase: fixed offered rate, response time from scheduled
// arrival (coordinated-omission-free), single-op series only — batch
// arrival processes are a different experiment.
template <concepts::Queue Q>
void openloop_series(harness::MetricsTable& table, const std::string& name,
                     const std::vector<unsigned>& sweep,
                     std::uint64_t total_arrivals, unsigned runs,
                     double total_rate_hz, bool poisson,
                     const options& base_opts) {
  for (unsigned threads : sweep) {
    options opts = base_opts;
    opts.max_threads(threads + 2);
    std::unique_ptr<Q> q;
    std::vector<std::unique_ptr<typename Q::handle>> handles;
    const std::uint64_t per_thread = total_arrivals / threads;
    const double rate_per_thread = total_rate_hz / threads;
    auto setup = [&] {
      handles.clear();
      q = std::make_unique<Q>(opts);
      handles.resize(threads);
    };
    auto op = [&](unsigned worker) {
      auto& h = handles[worker];
      if (!h) h = std::make_unique<typename Q::handle>(q->get_handle());
      while (!q->try_push(worker, *h)) {
        if (!q->try_pop(*h)) break;
      }
      (void)q->try_pop(*h);
    };
    const auto res = harness::open_loop_measure(
        runs, threads, per_thread, rate_per_thread, poisson, setup, op);
    table.set(name, threads,
              harness::OpMetrics{res.achieved_mops, res.response.p50(),
                                 res.response.p99(), res.response.p999(),
                                 res.response.max()});
    std::cerr << "  " << name << " @" << threads << ": achieved "
              << res.achieved_mops << " Mops/s (response p50 "
              << res.response.p50() << "ns p99 " << res.response.p99()
              << "ns)\n";
  }
}

}  // namespace
}  // namespace wcq::bench

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::bench;
  using ShardedWcq = harness::ShardedWcqAdapter;
  using ShardedFaa = harness::ShardedFaaAdapter;

  const auto threads = default_threads();
  const std::uint64_t ops = default_ops();
  const unsigned runs = default_runs();
  const auto shards = shard_sweep();
  const unsigned batch = batch_size();

  {
    const auto& t = topo::cpu_topology();
    std::cerr << "sharded scaling: " << t.cpus << " cpus / "
              << t.clusters.size() << " clusters, recommended shards "
              << topo::recommended_shards() << ", batch " << batch << "\n";
  }

  // ---- closed-loop pairwise: throughput + service percentiles ----
  harness::MetricsTable closed("Sharded pairwise scaling (closed loop)",
                               "threads");

  // Single-ring baselines — "wCQ" is the series the >= 2x acceptance
  // criterion compares against.
  named_series_latency<harness::WcqAdapter>(
      closed, "wCQ", pairwise_timed_workload<harness::WcqAdapter>(), threads,
      ops, runs, options{});
  named_series_latency<harness::FaaAdapter>(
      closed, "FAA", pairwise_timed_workload<harness::FaaAdapter>(), threads,
      ops, runs, options{});

  // Sharded wCQ: shard count x picker sweep, single-op pairwise.
  for (const unsigned s : shards) {
    for (const auto pol :
         {shard_policy::round_robin, shard_policy::sticky,
          shard_policy::load_aware}) {
      const std::string name = "wCQ shard=" + std::to_string(s) + "/" +
                               policy_tag(pol);
      named_series_latency<ShardedWcq>(
          closed, name, pairwise_timed_workload<ShardedWcq>(), threads, ops,
          runs, options{}.shards(s).shard_policy(pol));
    }
  }

  // Batch series: the amortization story. Over FAA the whole chunk is
  // one ticket burst; over wCQ it is one shard selection per chunk.
  for (const unsigned s : shards) {
    named_series_latency<ShardedWcq>(
        closed, "wCQ shard=" + std::to_string(s) + "/rr+batch",
        pairwise_batch_workload<ShardedWcq>(batch), threads, ops, runs,
        options{}.shards(s).batch_limit(batch));
    named_series_latency<ShardedFaa>(
        closed, "FAA shard=" + std::to_string(s) + "/rr+batch",
        pairwise_batch_workload<ShardedFaa>(batch), threads, ops, runs,
        options{}.shards(s).batch_limit(batch));
  }

  // ---- open-loop: offered-rate response times ----
  harness::MetricsTable open("Sharded open-loop response time", "threads");
  const double rate = default_rate_hz();
  const bool poisson = default_poisson();
  // A slice of the arrivals keeps the open-loop phase proportionate.
  const std::uint64_t arrivals = ops / 2;
  openloop_series<harness::WcqAdapter>(open, "wCQ", threads, arrivals, runs,
                                       rate, poisson, options{});
  for (const unsigned s : shards) {
    openloop_series<ShardedWcq>(
        open, "wCQ shard=" + std::to_string(s) + "/rr", threads, arrivals,
        runs, rate, poisson, options{}.shards(s));
  }

  emit_metrics(closed, argc, argv);
  std::cout << "\n";
  emit_metrics(open, argc, argv);
  return 0;
}
