// Micro benchmarks (google-benchmark): uncontended single-op costs of
// every queue — the floor each design pays before scalability enters.
// Complements the figure benches, which measure contended throughput.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "harness/queue_adapters.hpp"
#include "wcq/concepts.hpp"

namespace {

inline wcq::options micro_opts() {
  return wcq::options{}.max_threads(2).order(12);
}

template <wcq::concepts::Queue Q>
void BM_pairwise(benchmark::State& state) {
  Q q(micro_opts());
  auto handle = q.get_handle();
  for (auto _ : state) {
    while (!q.try_push(7, handle)) {
    }
    benchmark::DoNotOptimize(q.try_pop(handle));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

template <wcq::concepts::Queue Q>
void BM_empty_dequeue(benchmark::State& state) {
  Q q(micro_opts());
  auto handle = q.get_handle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_pop(handle));
  }
  state.SetItemsProcessed(state.iterations());
}

template <wcq::concepts::Queue Q>
void BM_enqueue_burst(benchmark::State& state) {
  // 256 enqueues then 256 dequeues per iteration: the queue actually
  // holds elements, unlike the pairwise ping-pong.
  Q q(micro_opts());
  auto handle = q.get_handle();
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      while (!q.try_push(static_cast<std::uint64_t>(i), handle)) {
      }
    }
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(q.try_pop(handle));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}

}  // namespace

#define WCQ_MICRO(Adapter)                                      \
  BENCHMARK_TEMPLATE(BM_pairwise, wcq::harness::Adapter);       \
  BENCHMARK_TEMPLATE(BM_empty_dequeue, wcq::harness::Adapter);  \
  BENCHMARK_TEMPLATE(BM_enqueue_burst, wcq::harness::Adapter)

WCQ_MICRO(WcqAdapter);
WCQ_MICRO(WcqPortableAdapter);
WCQ_MICRO(ScqAdapter);
WCQ_MICRO(LcrqAdapter);
WCQ_MICRO(YmcAdapter);
WCQ_MICRO(MsqAdapter);
WCQ_MICRO(CcqAdapter);
WCQ_MICRO(CrTurnAdapter);
WCQ_MICRO(FaaAdapter);
WCQ_MICRO(LscqAdapter);
WCQ_MICRO(UwcqAdapter);

BENCHMARK_MAIN();
