// Micro benchmarks (google-benchmark): uncontended single-op costs of
// every queue — the floor each design pays before scalability enters.
// Complements the figure benches, which measure contended throughput.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "harness/queue_adapters.hpp"

namespace {

using wcq::harness::AdapterConfig;

template <typename Adapter>
void BM_pairwise(benchmark::State& state) {
  AdapterConfig cfg;
  cfg.max_threads = 2;
  cfg.bounded_order = 12;
  Adapter adapter(cfg);
  auto handle = adapter.make_handle();
  std::uint64_t v = 0;
  for (auto _ : state) {
    while (!adapter.enqueue(7, handle)) {
    }
    benchmark::DoNotOptimize(adapter.dequeue(&v, handle));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

template <typename Adapter>
void BM_empty_dequeue(benchmark::State& state) {
  AdapterConfig cfg;
  cfg.max_threads = 2;
  cfg.bounded_order = 12;
  Adapter adapter(cfg);
  auto handle = adapter.make_handle();
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapter.dequeue(&v, handle));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Adapter>
void BM_enqueue_burst(benchmark::State& state) {
  // 256 enqueues then 256 dequeues per iteration: the queue actually
  // holds elements, unlike the pairwise ping-pong.
  AdapterConfig cfg;
  cfg.max_threads = 2;
  cfg.bounded_order = 12;
  Adapter adapter(cfg);
  auto handle = adapter.make_handle();
  std::uint64_t v = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      while (!adapter.enqueue(static_cast<std::uint64_t>(i), handle)) {
      }
    }
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(adapter.dequeue(&v, handle));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}

}  // namespace

#define WCQ_MICRO(Adapter)                                      \
  BENCHMARK_TEMPLATE(BM_pairwise, wcq::harness::Adapter);       \
  BENCHMARK_TEMPLATE(BM_empty_dequeue, wcq::harness::Adapter);  \
  BENCHMARK_TEMPLATE(BM_enqueue_burst, wcq::harness::Adapter)

WCQ_MICRO(WcqAdapter);
WCQ_MICRO(WcqPortableAdapter);
WCQ_MICRO(ScqAdapter);
WCQ_MICRO(LcrqAdapter);
WCQ_MICRO(YmcAdapter);
WCQ_MICRO(MsqAdapter);
WCQ_MICRO(CcqAdapter);
WCQ_MICRO(CrTurnAdapter);
WCQ_MICRO(FaaAdapter);
WCQ_MICRO(LscqAdapter);
WCQ_MICRO(UwcqAdapter);

BENCHMARK_MAIN();
