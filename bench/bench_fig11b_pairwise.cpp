// Figure 11b — pairwise Enqueue-Dequeue throughput, x86-64.
// Each thread alternates Enqueue and Dequeue in a tight loop. The
// paper shows wCQ ≈ SCQ ≈ LCRQ on top, YMC and the rest below.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  harness::SeriesTable table("Figure 11b: pairwise Enqueue-Dequeue",
                             "threads", "Mops/sec");
  auto make = []<typename A>() { return bench::pairwise_workload<A>(); };
  bench::run_all_queues(table, make, bench::default_threads(),
                        bench::default_ops(), bench::default_runs());
  bench::emit(table, argc, argv);
  return 0;
}
