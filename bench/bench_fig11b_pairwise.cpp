// Figure 11b — pairwise Enqueue-Dequeue, x86-64, latency-first: each
// thread alternates Enqueue and Dequeue in a tight loop (the paper
// shows wCQ ≈ SCQ ≈ LCRQ on top, YMC and the rest below), and besides
// throughput every row now carries sampled per-op service-latency
// percentiles — for a wait-free queue the p99.9/max columns are the
// point, since bounded per-op steps is the property being sold.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  harness::MetricsTable table("Figure 11b: pairwise Enqueue-Dequeue",
                              "threads");
  auto make = []<typename A>() { return bench::pairwise_timed_workload<A>(); };
  bench::run_all_queues_latency(table, make, bench::default_threads(),
                                bench::default_ops(), bench::default_runs());
  bench::emit_metrics(table, argc, argv);
  return 0;
}
