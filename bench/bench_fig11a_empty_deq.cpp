// Figure 11a — empty-dequeue throughput, x86-64.
// Dequeue in a tight loop on an always-empty queue. wCQ and SCQ lead
// in the paper thanks to the Threshold fast exit; FAA does poorly
// because it still pays an RMW per call.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  harness::SeriesTable table("Figure 11a: empty Dequeue throughput",
                             "threads", "Mops/sec");
  auto make = []<typename A>() { return bench::empty_dequeue_workload<A>(); };
  bench::run_all_queues(table, make, bench::default_threads(),
                        bench::default_ops(), bench::default_runs());
  bench::emit(table, argc, argv);
  return 0;
}
