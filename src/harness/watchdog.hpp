// Starvation watchdog: a monitor thread that converts a livelocked or
// starved queue operation into a crisp, attributed failure instead of
// a silent ctest timeout.
//
// wCQ's headline guarantee is per-operation progress: every operation
// finishes in a bounded number of *its own* steps, no matter how
// threads are scheduled. Wall-clock is only a proxy for steps — a
// preempted thread executes no steps while off-CPU — so the watchdog's
// stall limit has to be generous enough to absorb scheduler noise on
// an oversubscribed box, but any op that stays in flight *while the
// limit passes* is either livelocked (burning unbounded steps, which
// wait-freedom forbids) or starved far beyond what injection-induced
// preemption can explain. The soak test (tests/test_soak_liveness.cpp)
// runs this under randomized sched-yield/busy-spin injection; a
// violation there is a liveness bug, not noise.
//
// Usage: workers bracket each queue operation with op_begin/op_end on
// their own lane. All lane state is relaxed atomics on padded
// cache lines, so the instrumentation cost is two plain stores per op.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness/latency.hpp"
#include "wcq/detail.hpp"

namespace wcq::harness {

class StarvationWatchdog {
 public:
  struct Report {
    std::uint64_t violations = 0;     // ops seen in flight past the limit
    std::uint64_t max_stall_ns = 0;   // longest in-flight time ever sampled
    unsigned worst_thread = 0;        // lane of max_stall_ns
    std::uint64_t total_ops = 0;      // completed ops across all lanes
  };

  // `stall_limit` is the per-operation wall-clock bound; `fatal` makes
  // the monitor print every lane's state and abort() on the first
  // violation (the soak test wants a fast, attributed failure rather
  // than a hang that only the ctest timeout reaps).
  StarvationWatchdog(unsigned threads, std::chrono::nanoseconds stall_limit,
                     bool fatal = false)
      : lanes_(threads),
        limit_ns_(static_cast<std::uint64_t>(stall_limit.count())),
        fatal_(fatal) {}

  ~StarvationWatchdog() { stop(); }

  StarvationWatchdog(const StarvationWatchdog&) = delete;
  StarvationWatchdog& operator=(const StarvationWatchdog&) = delete;

  void op_begin(unsigned tid) {
    lanes_[tid].begin_ns.store(now_ns(), std::memory_order_relaxed);
  }

  void op_end(unsigned tid) {
    lanes_[tid].begin_ns.store(0, std::memory_order_relaxed);
    lanes_[tid].ops.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t ops(unsigned tid) const {
    return lanes_[tid].ops.load(std::memory_order_relaxed);
  }

  // Spawn the monitor. Poll often enough to catch a stall well before
  // the limit doubles, but never busier than 1 kHz.
  void start() {
    running_.store(true, std::memory_order_release);
    monitor_ = std::thread([this] {
      const std::uint64_t poll_ns =
          limit_ns_ / 8 > 1'000'000 ? limit_ns_ / 8 : 1'000'000;
      while (running_.load(std::memory_order_acquire)) {
        sample();
        std::this_thread::sleep_for(std::chrono::nanoseconds(poll_ns));
      }
      sample();  // final sweep so a stall right before stop() still counts
    });
  }

  void stop() {
    if (monitor_.joinable()) {
      running_.store(false, std::memory_order_release);
      monitor_.join();
    }
  }

  Report report() const {
    Report r;
    r.violations = violations_.load(std::memory_order_relaxed);
    r.max_stall_ns = max_stall_ns_.load(std::memory_order_relaxed);
    r.worst_thread = worst_thread_.load(std::memory_order_relaxed);
    for (const Lane& lane : lanes_) {
      r.total_ops += lane.ops.load(std::memory_order_relaxed);
    }
    return r;
  }

 private:
  struct alignas(detail::kNoFalseSharing) Lane {
    std::atomic<std::uint64_t> begin_ns{0};  // 0 = no op in flight
    std::atomic<std::uint64_t> ops{0};
  };

  void sample() {
    const std::uint64_t now = now_ns();
    for (unsigned t = 0; t < lanes_.size(); ++t) {
      const std::uint64_t begin =
          lanes_[t].begin_ns.load(std::memory_order_relaxed);
      if (begin == 0 || now <= begin) continue;
      const std::uint64_t stall = now - begin;
      if (stall > max_stall_ns_.load(std::memory_order_relaxed)) {
        max_stall_ns_.store(stall, std::memory_order_relaxed);
        worst_thread_.store(t, std::memory_order_relaxed);
      }
      if (stall > limit_ns_) {
        violations_.fetch_add(1, std::memory_order_relaxed);
        if (fatal_) {
          std::fprintf(stderr,
                       "watchdog: thread %u op in flight for %.3f s "
                       "(limit %.3f s) — liveness violation\n",
                       t, static_cast<double>(stall) / 1e9,
                       static_cast<double>(limit_ns_) / 1e9);
          dump(now);
          std::abort();
        }
      }
    }
  }

  void dump(std::uint64_t now) const {
    for (unsigned t = 0; t < lanes_.size(); ++t) {
      const std::uint64_t begin =
          lanes_[t].begin_ns.load(std::memory_order_relaxed);
      const auto ops = static_cast<unsigned long long>(
          lanes_[t].ops.load(std::memory_order_relaxed));
      if (begin == 0) {
        std::fprintf(stderr, "  thread %u: %llu ops, idle\n", t, ops);
      } else {
        std::fprintf(stderr, "  thread %u: %llu ops, %.3f ms in flight\n", t,
                     ops, static_cast<double>(now - begin) / 1e6);
      }
    }
  }

  std::vector<Lane> lanes_;
  const std::uint64_t limit_ns_;
  const bool fatal_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> max_stall_ns_{0};
  std::atomic<unsigned> worst_thread_{0};
  std::thread monitor_;
};

}  // namespace wcq::harness
