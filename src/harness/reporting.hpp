// Result tables the bench binaries print.
//
//  - SeriesTable: one scalar per (series, x) — the figure-shaped
//    throughput tables (rows = x values, columns = series), plus
//    long-format CSV for the plotting scripts.
//  - MetricsTable: one OpMetrics bundle per (series, x) — throughput
//    alongside per-op latency percentiles (p50/p99/p99.9/max ns), with
//    CSV and JSON emission so scripts/run_benches.sh can lift the
//    percentile fields into BENCH_summary.json without a parser.
#pragma once

#include <cstdint>
#include <cstring>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace wcq::harness {

class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void set(const std::string& series, std::uint64_t x, double value) {
    if (data_.find(series) == data_.end()) order_.push_back(series);
    data_[series][x] = value;
    xs_.insert(x);
  }

  const std::string& title() const { return title_; }

  void print(std::ostream& os) const {
    os << "== " << title_ << " (" << y_label_ << ") ==\n";
    os << std::setw(12) << x_label_;
    for (const auto& name : order_) os << std::setw(12) << name;
    os << "\n";
    for (const std::uint64_t x : xs_) {
      os << std::setw(12) << x;
      for (const auto& name : order_) {
        const auto& series = data_.at(name);
        const auto it = series.find(x);
        if (it == series.end()) {
          os << std::setw(12) << "-";
        } else {
          os << std::setw(12) << std::fixed << std::setprecision(3)
             << it->second;
        }
      }
      os << "\n";
    }
  }

  void print_csv(std::ostream& os) const {
    os << "# " << title_ << "\n";
    os << "series," << x_label_ << "," << y_label_ << "\n";
    for (const auto& name : order_) {
      for (const auto& [x, value] : data_.at(name)) {
        os << name << "," << x << "," << value << "\n";
      }
    }
  }

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<std::string> order_;
  std::map<std::string, std::map<std::uint64_t, double>> data_;
  std::set<std::uint64_t> xs_;
};

// One measured point of a latency-first bench: throughput plus the
// per-op latency distribution's headline percentiles in nanoseconds.
struct OpMetrics {
  double mops = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;
};

// (series, x) -> OpMetrics. Printed as one wide row per point (the
// human table), as long-format CSV with one column per metric, or as a
// JSON object for machine consumers.
class MetricsTable {
 public:
  MetricsTable(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  void set(const std::string& series, std::uint64_t x, const OpMetrics& m) {
    if (data_.find(series) == data_.end()) order_.push_back(series);
    data_[series][x] = m;
  }

  const std::string& title() const { return title_; }

  void print(std::ostream& os) const {
    os << "== " << title_ << " ==\n";
    os << std::setw(12) << "series" << std::setw(10) << x_label_
       << std::setw(12) << "Mops/sec" << std::setw(12) << "p50_ns"
       << std::setw(12) << "p99_ns" << std::setw(12) << "p99.9_ns"
       << std::setw(12) << "max_ns" << "\n";
    for (const auto& name : order_) {
      for (const auto& [x, m] : data_.at(name)) {
        os << std::setw(12) << name << std::setw(10) << x << std::setw(12)
           << std::fixed << std::setprecision(3) << m.mops << std::setw(12)
           << m.p50_ns << std::setw(12) << m.p99_ns << std::setw(12)
           << m.p999_ns << std::setw(12) << m.max_ns << "\n";
      }
    }
  }

  void print_csv(std::ostream& os) const {
    os << "# " << title_ << "\n";
    os << "series," << x_label_ << ",mops,p50_ns,p99_ns,p999_ns,max_ns\n";
    for (const auto& name : order_) {
      for (const auto& [x, m] : data_.at(name)) {
        os << name << "," << x << "," << m.mops << "," << m.p50_ns << ","
           << m.p99_ns << "," << m.p999_ns << "," << m.max_ns << "\n";
      }
    }
  }

  void print_json(std::ostream& os) const {
    os << "{\"title\": \"" << title_ << "\", \"x_label\": \"" << x_label_
       << "\", \"points\": [";
    bool first = true;
    for (const auto& name : order_) {
      for (const auto& [x, m] : data_.at(name)) {
        if (!first) os << ", ";
        first = false;
        os << "{\"series\": \"" << name << "\", \"x\": " << x
           << ", \"mops\": " << m.mops << ", \"p50_ns\": " << m.p50_ns
           << ", \"p99_ns\": " << m.p99_ns << ", \"p999_ns\": " << m.p999_ns
           << ", \"max_ns\": " << m.max_ns << "}";
      }
    }
    os << "]}\n";
  }

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> order_;
  std::map<std::string, std::map<std::uint64_t, OpMetrics>> data_;
};

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline bool want_csv(int argc, char** argv) {
  return has_flag(argc, argv, "--csv");
}

inline bool want_json(int argc, char** argv) {
  return has_flag(argc, argv, "--json");
}

}  // namespace wcq::harness
