// SeriesTable: collect (series, x, value) points and print them as a
// figure-shaped table (rows = x values, columns = series in insertion
// order) or as long-format CSV for the plotting scripts.
#pragma once

#include <cstdint>
#include <cstring>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace wcq::harness {

class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void set(const std::string& series, std::uint64_t x, double value) {
    if (data_.find(series) == data_.end()) order_.push_back(series);
    data_[series][x] = value;
    xs_.insert(x);
  }

  const std::string& title() const { return title_; }

  void print(std::ostream& os) const {
    os << "== " << title_ << " (" << y_label_ << ") ==\n";
    os << std::setw(12) << x_label_;
    for (const auto& name : order_) os << std::setw(12) << name;
    os << "\n";
    for (const std::uint64_t x : xs_) {
      os << std::setw(12) << x;
      for (const auto& name : order_) {
        const auto& series = data_.at(name);
        const auto it = series.find(x);
        if (it == series.end()) {
          os << std::setw(12) << "-";
        } else {
          os << std::setw(12) << std::fixed << std::setprecision(3)
             << it->second;
        }
      }
      os << "\n";
    }
  }

  void print_csv(std::ostream& os) const {
    os << "# " << title_ << "\n";
    os << "series," << x_label_ << "," << y_label_ << "\n";
    for (const auto& name : order_) {
      for (const auto& [x, value] : data_.at(name)) {
        os << name << "," << x << "," << value << "\n";
      }
    }
  }

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<std::string> order_;
  std::map<std::string, std::map<std::uint64_t, double>> data_;
  std::set<std::uint64_t> xs_;
};

inline bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

}  // namespace wcq::harness
