// Fixed-bucket HDR-style latency histogram plus the sampling helpers
// the benches record through.
//
// Layout: log-linear buckets over nanoseconds. Tier 0 covers [0, 64)
// with exact 1-ns buckets; every higher tier holds 32 buckets of
// doubling width, so any recorded value lands in a bucket whose width
// is at most 1/32 (~3.1%) of the value — the same relative-precision
// contract HdrHistogram makes at 2 significant digits, but with a
// fixed 15 KB footprint, no allocation, and trivially mergeable
// counts. The full uint64 nanosecond range is covered (58 tiers), so
// no clamping path exists to lie about outliers; max is tracked
// exactly on the side.
//
// Concurrency model: recording is *per-thread* — each worker owns a
// LatencyHistogram (plain uint64 counts, no atomics, no sharing, so
// the hot path is one array increment) and the driver merges the
// per-thread histograms after the workers join. merge() is plain
// count addition, which is also what makes per-run histograms
// combinable across repeat_measure's runs.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>

namespace wcq::harness {

class LatencyHistogram {
 public:
  // 32 sub-buckets per power-of-two tier => <= 1/32 relative error.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  // Tier 0: 2*kSub exact buckets; tiers 1..58 cover the rest of u64.
  static constexpr unsigned kBucketCount =
      static_cast<unsigned>((64 - kSubBits - 1 + 1) * kSub + kSub);

  LatencyHistogram() { reset(); }

  void reset() {
    for (auto& c : counts_) c = 0;
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~std::uint64_t{0};
  }

  // Which bucket a value lands in. Tier 0 is exact; above it the tier
  // is the value's magnitude and the sub-bucket its next 5 bits.
  static constexpr unsigned bucket_of(std::uint64_t v) {
    if (v < 2 * kSub) return static_cast<unsigned>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned tier = msb - kSubBits;  // >= 1
    const unsigned sub = static_cast<unsigned>((v >> tier) - kSub);
    return (tier + 1) * static_cast<unsigned>(kSub) + sub;
  }

  // Smallest value mapping to `index` (inverse of bucket_of).
  static constexpr std::uint64_t bucket_low(unsigned index) {
    if (index < 2 * kSub) return index;
    const unsigned tier = index / static_cast<unsigned>(kSub) - 1;
    const std::uint64_t sub = index % kSub;
    return (kSub + sub) << tier;
  }

  // Largest value mapping to `index`.
  static constexpr std::uint64_t bucket_high(unsigned index) {
    return index + 1 < kBucketCount ? bucket_low(index + 1) - 1
                                    : ~std::uint64_t{0};
  }

  void record(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (v < min_) min_ = v;
  }

  // Fold another histogram's samples into this one.
  void merge(const LatencyHistogram& o) {
    for (unsigned i = 0; i < kBucketCount; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    if (o.min_ < min_) min_ = o.min_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  // Upper bound of the bucket holding the pct-th percentile sample
  // (HdrHistogram's "highest equivalent value" convention), capped at
  // the exact max so p100 == max().
  std::uint64_t value_at_percentile(double pct) const {
    if (count_ == 0) return 0;
    if (pct < 0.0) pct = 0.0;
    if (pct > 100.0) pct = 100.0;
    std::uint64_t want =
        static_cast<std::uint64_t>(pct / 100.0 * static_cast<double>(count_) +
                                   0.5);
    if (want < 1) want = 1;
    if (want > count_) want = count_;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
      cum += counts_[i];
      if (cum >= want) {
        const std::uint64_t high = bucket_high(i);
        return high < max_ ? high : max_;
      }
    }
    return max_;
  }

  std::uint64_t p50() const { return value_at_percentile(50.0); }
  std::uint64_t p99() const { return value_at_percentile(99.0); }
  std::uint64_t p999() const { return value_at_percentile(99.9); }

 private:
  std::uint64_t counts_[kBucketCount];
  std::uint64_t count_;
  std::uint64_t sum_;
  std::uint64_t max_;
  std::uint64_t min_;
};

// Monotonic nanosecond clock every latency measurement in the harness
// reads (one definition so open-loop deadlines and service timestamps
// are on the same timebase).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Samples 1 of every `period` operations into a histogram (period
// rounded up to a power of two so arming is one mask test). Timing
// every op roughly doubles the cost of a ~40 ns queue op on the clock
// calls alone, which would turn a throughput figure into a clock
// benchmark; sampling keeps the perturbation under a few percent while
// a 10M-op run still collects ~150k+ samples per series.
class OpSampler {
 public:
  explicit OpSampler(LatencyHistogram& hist, unsigned period = 64)
      : hist_(hist), mask_(std::bit_ceil(period ? period : 1u) - 1) {}

  // True when the upcoming op should be timed.
  bool arm() { return (++tick_ & mask_) == 0; }

  void record_ns(std::uint64_t ns) { hist_.record(ns); }

  LatencyHistogram& hist() { return hist_; }

 private:
  LatencyHistogram& hist_;
  unsigned mask_;
  unsigned tick_ = 0;
};

// Run `op` once, timing it iff the sampler elects this op.
template <typename Op>
inline void maybe_timed(OpSampler& s, Op&& op) {
  if (s.arm()) {
    const std::uint64_t t0 = now_ns();
    op();
    s.record_ns(now_ns() - t0);
  } else {
    op();
  }
}

}  // namespace wcq::harness
