// Measurement driver: spawn N pinned workers, release them through a
// spin barrier, time the run wall-clock, repeat, and report mean
// Mops/s with the coefficient of variation across runs — plus, when
// the body records into its per-thread histogram, merged per-op
// latency percentiles.
//
// Two load models:
//  - repeat_measure / repeat_measure_latency: closed loop. Each worker
//    issues its next op the moment the previous one returns, so the
//    system always runs at saturation and the figure is throughput.
//    Closed-loop latency suffers coordinated omission: a slow op also
//    delays the *issue* of every op behind it, hiding queueing delay.
//  - open_loop_measure: arrival-rate controlled. Ops are due at
//    schedule times drawn independently of the system's speed (fixed
//    interval or Poisson), and a late start is charged to the op:
//    response time = completion - scheduled arrival = queueing +
//    service. This is the number a latency SLO actually bounds.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/latency.hpp"
#include "wcq/detail.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wcq::harness {

struct MeasureResult {
  double mean_mops = 0.0;
  double cv = 0.0;  // stddev / mean across runs
  // Per-op service latency (ns), merged across threads and runs;
  // empty (count()==0) unless the body recorded samples.
  LatencyHistogram latency;
};

// Thread sweep from WCQ_BENCH_THREADS ("1,2,4,8"), or a small default.
inline std::vector<unsigned> sweep_thread_counts() {
  std::vector<unsigned> out;
  if (const char* env = std::getenv("WCQ_BENCH_THREADS"); env && *env) {
    unsigned cur = 0;
    bool have = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + static_cast<unsigned>(*p - '0');
        have = true;
      } else {
        if (have && cur > 0) out.push_back(cur);
        cur = 0;
        have = false;
        if (*p == '\0') break;
      }
    }
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

inline void pin_to_cpu(unsigned worker) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

// Run `body(worker, hist)` on `threads` workers, `runs` times;
// `setup()` is invoked before each run (fresh queue per run).
// `total_ops` is the op count a full run performs, used for the Mops/s
// figure. Each worker gets a private LatencyHistogram (no sharing on
// the record path); all of them are merged into the result.
template <typename Setup, typename Body>
MeasureResult repeat_measure_latency(unsigned runs, unsigned threads,
                                     std::uint64_t total_ops, Setup&& setup,
                                     Body&& body) {
  if (runs == 0) runs = 1;
  if (threads == 0) threads = 1;
  MeasureResult res;
  std::vector<double> mops;
  mops.reserve(runs);
  std::vector<LatencyHistogram> hists(threads);
  for (unsigned r = 0; r < runs; ++r) {
    setup();
    for (auto& h : hists) h.reset();
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        pin_to_cpu(w);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
          // Yield, not pause: keeps oversubscribed small machines live.
          std::this_thread::yield();
        }
        body(w, hists[w]);
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) {
      std::this_thread::yield();
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : workers) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    mops.push_back(secs > 0.0
                       ? static_cast<double>(total_ops) / 1e6 / secs
                       : 0.0);
    for (const auto& h : hists) res.latency.merge(h);
  }
  double sum = 0.0;
  for (double m : mops) sum += m;
  res.mean_mops = sum / static_cast<double>(mops.size());
  if (mops.size() > 1 && res.mean_mops > 0.0) {
    double var = 0.0;
    for (double m : mops) var += (m - res.mean_mops) * (m - res.mean_mops);
    var /= static_cast<double>(mops.size() - 1);
    res.cv = std::sqrt(var) / res.mean_mops;
  }
  return res;
}

// Latency-blind flavor kept for the throughput-only benches.
template <typename Setup, typename Body>
MeasureResult repeat_measure(unsigned runs, unsigned threads,
                             std::uint64_t total_ops, Setup&& setup,
                             Body&& body) {
  return repeat_measure_latency(
      runs, threads, total_ops, setup,
      [&](unsigned w, LatencyHistogram&) { body(w); });
}

// ---- open-loop (arrival-rate controlled) load ----------------------

struct OpenLoopResult {
  double offered_mops = 0.0;   // the configured arrival rate
  double achieved_mops = 0.0;  // completions / wall-clock, mean of runs
  // Response time (ns) = completion - scheduled arrival, i.e. queueing
  // (pacer backlog) + service. Merged across threads and runs.
  LatencyHistogram response;
  // Pacing accuracy: mean ns between an op's scheduled arrival and the
  // moment the worker actually began it. Small vs the inter-arrival
  // gap = the pacing wheel kept up; large = the offered rate exceeds
  // capacity and responses are dominated by queueing delay.
  double mean_start_delay_ns = 0.0;
};

// Drive each of `threads` workers with its own arrival stream of
// `arrivals_per_thread` ops at `rate_per_thread_hz`; `poisson` selects
// exponential inter-arrival gaps (memoryless bursts) over a fixed
// interval. `op(worker)` performs one operation. Arrivals are never
// dropped or deferred by the pacer: when the system falls behind, ops
// start late and the lateness is charged to their response time.
template <typename Setup, typename Op>
OpenLoopResult open_loop_measure(unsigned runs, unsigned threads,
                                 std::uint64_t arrivals_per_thread,
                                 double rate_per_thread_hz, bool poisson,
                                 Setup&& setup, Op&& op) {
  if (runs == 0) runs = 1;
  if (threads == 0) threads = 1;
  if (rate_per_thread_hz <= 0.0) rate_per_thread_hz = 1.0;
  OpenLoopResult res;
  res.offered_mops = rate_per_thread_hz * threads / 1e6;
  const double gap_ns = 1e9 / rate_per_thread_hz;
  std::vector<LatencyHistogram> hists(threads);
  std::vector<std::uint64_t> delay_sums(threads, 0);
  double secs_sum = 0.0;
  std::uint64_t delay_total = 0;
  for (unsigned r = 0; r < runs; ++r) {
    setup();
    for (auto& h : hists) h.reset();
    for (auto& d : delay_sums) d = 0;
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w, r] {
        pin_to_cpu(w);
        Xoshiro256 rng(0xa11ce5u + w * 7919u + r * 104729u);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        // The pacing wheel: successive deadlines accumulate in double
        // precision so rounding never drifts the offered rate.
        double sched = static_cast<double>(now_ns());
        for (std::uint64_t i = 0; i < arrivals_per_thread; ++i) {
          double gap = gap_ns;
          if (poisson) {
            // u in (0, 1]: exponential inter-arrival via inversion.
            const double u = (static_cast<double>(rng.next() >> 11) + 1.0) /
                             9007199254740993.0;
            gap = gap_ns * -std::log(u);
          }
          sched += gap;
          const auto deadline = static_cast<std::uint64_t>(sched);
          std::uint64_t now = now_ns();
          while (now < deadline) {
            // Far out: yield (oversubscribed boxes must let peers
            // run); close in: spin for sub-µs arming accuracy.
            if (deadline - now > 100'000) {
              std::this_thread::yield();
            } else {
              detail::cpu_pause();
            }
            now = now_ns();
          }
          delay_sums[w] += now - deadline;
          op(w);
          hists[w].record(now_ns() - deadline);
        }
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) {
      std::this_thread::yield();
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : workers) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    secs_sum += std::chrono::duration<double>(t1 - t0).count();
    for (const auto& h : hists) res.response.merge(h);
    for (const auto d : delay_sums) delay_total += d;
  }
  const double ops_per_run = static_cast<double>(arrivals_per_thread) * threads;
  if (secs_sum > 0.0) {
    res.achieved_mops = ops_per_run / 1e6 / (secs_sum / runs);
  }
  if (res.response.count() > 0) {
    res.mean_start_delay_ns = static_cast<double>(delay_total) /
                              static_cast<double>(res.response.count());
  }
  return res;
}

}  // namespace wcq::harness
