// Measurement driver: spawn N pinned workers, release them through a
// spin barrier, time the run wall-clock, repeat, and report mean
// Mops/s with the coefficient of variation across runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "wcq/detail.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wcq::harness {

struct MeasureResult {
  double mean_mops = 0.0;
  double cv = 0.0;  // stddev / mean across runs
};

// Thread sweep from WCQ_BENCH_THREADS ("1,2,4,8"), or a small default.
inline std::vector<unsigned> sweep_thread_counts() {
  std::vector<unsigned> out;
  if (const char* env = std::getenv("WCQ_BENCH_THREADS"); env && *env) {
    unsigned cur = 0;
    bool have = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + static_cast<unsigned>(*p - '0');
        have = true;
      } else {
        if (have && cur > 0) out.push_back(cur);
        cur = 0;
        have = false;
        if (*p == '\0') break;
      }
    }
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

inline void pin_to_cpu(unsigned worker) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

// Run `body(worker)` on `threads` workers, `runs` times; `setup()` is
// invoked before each run (fresh queue per run). `total_ops` is the
// op count a full run performs, used for the Mops/s figure.
template <typename Setup, typename Body>
MeasureResult repeat_measure(unsigned runs, unsigned threads,
                             std::uint64_t total_ops, Setup&& setup,
                             Body&& body) {
  if (runs == 0) runs = 1;
  if (threads == 0) threads = 1;
  std::vector<double> mops;
  mops.reserve(runs);
  for (unsigned r = 0; r < runs; ++r) {
    setup();
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        pin_to_cpu(w);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
          // Yield, not pause: keeps oversubscribed small machines live.
          std::this_thread::yield();
        }
        body(w);
      });
    }
    while (ready.load(std::memory_order_acquire) < threads) {
      std::this_thread::yield();
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : workers) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    mops.push_back(secs > 0.0
                       ? static_cast<double>(total_ops) / 1e6 / secs
                       : 0.0);
  }
  MeasureResult res;
  double sum = 0.0;
  for (double m : mops) sum += m;
  res.mean_mops = sum / static_cast<double>(mops.size());
  if (mops.size() > 1 && res.mean_mops > 0.0) {
    double var = 0.0;
    for (double m : mops) var += (m - res.mean_mops) * (m - res.mean_mops);
    var /= static_cast<double>(mops.size() - 1);
    res.cv = std::sqrt(var) / res.mean_mops;
  }
  return res;
}

}  // namespace wcq::harness
