// The paper's queue lineup, expressed through the one public surface:
// every entry is wcq::queue<std::uint64_t, Backend> plus a legend
// name. Workloads, tests, and benches constrain on
// wcq::concepts::Queue — there is no hand-rolled adapter duck type and
// no per-queue Config plumbing here; wcq::options configures every
// backend uniformly.
//
// Implemented for real: wCQ (+ portable build), the SCQ family on the
// layered ring kernel (NCQ, CCQ, SCQ, LSCQ), FAA, MSQ, LCRQ. Aliased
// placeholders (name carries a '*'): the rest of the lineup is mapped
// to the nearest implemented design so every figure binary links and
// runs end-to-end — YMC* -> FAA (unbounded FAA array), CRTurn* -> MSQ
// (CAS list), uwCQ* -> wCQ. Real implementations are ROADMAP open
// items: each lands as a Backend satisfying wcq::concepts::Backend
// and replaces its alias below.
#pragma once

#include <cstdint>

#include "wcq/ccq.hpp"
#include "wcq/concepts.hpp"
#include "wcq/faa_queue.hpp"
#include "wcq/lcrq.hpp"
#include "wcq/lscq.hpp"
#include "wcq/msq.hpp"
#include "wcq/ncq.hpp"
#include "wcq/queue.hpp"
#include "wcq/scq.hpp"
#include "wcq/sharded.hpp"
#include "wcq/wcq.hpp"

namespace wcq::harness {

// A lineup entry: the typed facade over one backend, tagged with the
// series name the paper's figure legends use.
template <typename Backend, const char* Name>
class Lineup : public wcq::queue<std::uint64_t, Backend> {
 public:
  static constexpr const char* kName = Name;
  using base = wcq::queue<std::uint64_t, Backend>;
  using base::base;
};

// Sharded lineup entry: wcq::sharded over one backend. When the
// options leave the shard count on auto (0) it is forced to 4 so the
// shared tests exercise real multi-shard paths on any machine —
// auto-resolution on a small box would yield one shard and the
// sharding layer would be tested in name only.
template <typename Backend, const char* Name>
class ShardedLineup : public wcq::sharded<std::uint64_t, Backend> {
 public:
  static constexpr const char* kName = Name;
  using base = wcq::sharded<std::uint64_t, Backend>;

  explicit ShardedLineup(const options& opt = options{})
      : base(opt.shards() != 0 ? opt : options{opt}.shards(4)) {}
};

// Series names as they appear in the paper's legends. A trailing '*'
// marks an aliased placeholder, not the real algorithm yet.
inline constexpr char kWcqName[] = "wCQ";
inline constexpr char kWcqPortableName[] = "wCQ-llsc";
inline constexpr char kUwcqName[] = "uwCQ*";
inline constexpr char kScqName[] = "SCQ";
inline constexpr char kNcqName[] = "NCQ";
inline constexpr char kCcqName[] = "CCQ";
inline constexpr char kLscqName[] = "LSCQ";
inline constexpr char kFaaName[] = "FAA";
inline constexpr char kYmcName[] = "YMC*";
inline constexpr char kLcrqName[] = "LCRQ";
inline constexpr char kMsqName[] = "MSQ";
inline constexpr char kCrTurnName[] = "CRTurn*";
inline constexpr char kShardedWcqName[] = "wCQ-shard";
inline constexpr char kShardedLcrqName[] = "LCRQ-shard";
inline constexpr char kShardedFaaName[] = "FAA-shard";

using WcqAdapter = Lineup<WcqQueue, kWcqName>;
using WcqPortableAdapter = Lineup<WcqPortableQueue, kWcqPortableName>;
using UwcqAdapter = Lineup<WcqQueue, kUwcqName>;

using ScqAdapter = Lineup<ScqQueue, kScqName>;
using NcqAdapter = Lineup<NcqQueue, kNcqName>;
using CcqAdapter = Lineup<CcqQueue, kCcqName>;
using LscqAdapter = Lineup<LscqQueue, kLscqName>;

using FaaAdapter = Lineup<FaaQueue, kFaaName>;
using YmcAdapter = Lineup<FaaQueue, kYmcName>;
using LcrqAdapter = Lineup<LcrqQueue, kLcrqName>;

using MsqAdapter = Lineup<MsqQueue, kMsqName>;
using CrTurnAdapter = Lineup<MsqQueue, kCrTurnName>;

// The PR 9 scaling layer over the two flagship backends (plus FAA for
// the shard-sweep benches, where its native ticket burst makes the
// batch API's amortization visible).
using ShardedWcqAdapter = ShardedLineup<WcqQueue, kShardedWcqName>;
using ShardedLcrqAdapter = ShardedLineup<LcrqQueue, kShardedLcrqName>;
using ShardedFaaAdapter = ShardedLineup<FaaQueue, kShardedFaaName>;

// Every lineup entry satisfies the concept the whole harness programs
// against; a backend that drifts breaks the build here, not in a
// template stack twelve frames deep.
static_assert(concepts::Queue<WcqAdapter>);
static_assert(concepts::Queue<WcqPortableAdapter>);
static_assert(concepts::Queue<UwcqAdapter>);
static_assert(concepts::Queue<ScqAdapter>);
static_assert(concepts::Queue<NcqAdapter>);
static_assert(concepts::Queue<CcqAdapter>);
static_assert(concepts::Queue<LscqAdapter>);
static_assert(concepts::Queue<FaaAdapter>);
static_assert(concepts::Queue<YmcAdapter>);
static_assert(concepts::Queue<LcrqAdapter>);
static_assert(concepts::Queue<MsqAdapter>);
static_assert(concepts::Queue<CrTurnAdapter>);
static_assert(concepts::Queue<ShardedWcqAdapter>);
static_assert(concepts::Queue<ShardedLcrqAdapter>);
static_assert(concepts::Queue<ShardedFaaAdapter>);

// The ablation benches read fast/slow/help counters through the typed
// facade; the wCQ entries must stay observable.
static_assert(concepts::ObservableQueue<WcqAdapter>);
static_assert(concepts::ObservableQueue<WcqPortableAdapter>);

// The dynamic-memory backends reclaim through the shared SMR layer;
// the memory bench and SMR tests read its counters through the facade.
static_assert(concepts::ReclaimingQueue<MsqAdapter>);
static_assert(concepts::ReclaimingQueue<FaaAdapter>);
static_assert(concepts::ReclaimingQueue<LcrqAdapter>);
static_assert(concepts::ReclaimingQueue<LscqAdapter>);

}  // namespace wcq::harness
