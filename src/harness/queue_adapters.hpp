// Uniform adapter layer: every queue in the paper's lineup behind the
// same {make_handle, enqueue, dequeue} surface the workloads program
// against.
//
// Implemented for real: wCQ (+ portable build), SCQ, FAA, MSQ.
// Aliased placeholders (name carries a '*'): the rest of the lineup is
// mapped to the nearest implemented design so every figure binary
// links and runs end-to-end — YMC*/LCRQ* -> FAA (unbounded FAA array),
// CCQ*/LSCQ* -> SCQ (bounded ring), CRTurn* -> MSQ (CAS list),
// uwCQ* -> wCQ. Real implementations are ROADMAP open items.
#pragma once

#include <cstdint>
#include <type_traits>

#include "wcq/faa_queue.hpp"
#include "wcq/msq.hpp"
#include "wcq/scq.hpp"
#include "wcq/wcq.hpp"

namespace wcq::harness {

struct AdapterConfig {
  unsigned max_threads = 128;
  unsigned bounded_order = 16;     // paper Section 6: 2^16-slot rings
  unsigned enqueue_patience = 16;  // fast-path attempts before slow path
  unsigned dequeue_patience = 64;
  unsigned help_delay = 16;        // ops between peer help checks
  bool remap = true;               // Cache_Remap on/off (Ablation A3)
};

namespace detail_adapters {

inline ScqQueue::Config scq_config(const AdapterConfig& cfg, bool portable) {
  ScqQueue::Config out;
  out.order = cfg.bounded_order;
  out.remap = cfg.remap;
  out.portable = portable;
  return out;
}

template <bool Portable>
typename WcqQueueT<Portable>::Config wcq_config(const AdapterConfig& cfg) {
  typename WcqQueueT<Portable>::Config out;
  out.order = cfg.bounded_order;
  out.max_threads = cfg.max_threads;
  out.enqueue_patience = cfg.enqueue_patience;
  out.dequeue_patience = cfg.dequeue_patience;
  out.help_delay = cfg.help_delay;
  out.remap = cfg.remap;
  return out;
}

}  // namespace detail_adapters

// ---- queues without per-thread state ----

template <typename Queue, const char* Name>
class BasicAdapter {
 public:
  static constexpr const char* kName = Name;
  struct Handle {};

  explicit BasicAdapter(const AdapterConfig& cfg) : q_(make_queue(cfg)) {}

  Handle make_handle() { return Handle{}; }
  bool enqueue(std::uint64_t v, Handle&) { return q_.enqueue(v); }
  bool dequeue(std::uint64_t* v, Handle&) { return q_.dequeue(v); }

 private:
  static auto make_queue(const AdapterConfig& cfg) {
    if constexpr (std::is_same_v<Queue, ScqQueue>) {
      return detail_adapters::scq_config(cfg, /*portable=*/false);
    } else {
      (void)cfg;
      return typename Queue::Config{};
    }
  }

  Queue q_;
};

// ---- wCQ, which carries handles and slow-path statistics ----

template <bool Portable, const char* Name>
class WcqAdapterT {
 public:
  static constexpr const char* kName = Name;
  using Queue = WcqQueueT<Portable>;
  using Handle = typename Queue::Handle;

  explicit WcqAdapterT(const AdapterConfig& cfg)
      : q_(detail_adapters::wcq_config<Portable>(cfg)) {}

  Handle make_handle() { return q_.make_handle(); }
  bool enqueue(std::uint64_t v, Handle& h) { return q_.enqueue(v, h); }
  bool dequeue(std::uint64_t* v, Handle& h) { return q_.dequeue(v, h); }
  WcqStats stats() const { return q_.stats(); }

 private:
  Queue q_;
};

// Series names as they appear in the paper's legends. A trailing '*'
// marks an aliased placeholder, not the real algorithm yet.
inline constexpr char kWcqName[] = "wCQ";
inline constexpr char kWcqPortableName[] = "wCQ-llsc";
inline constexpr char kUwcqName[] = "uwCQ*";
inline constexpr char kScqName[] = "SCQ";
inline constexpr char kCcqName[] = "CCQ*";
inline constexpr char kLscqName[] = "LSCQ*";
inline constexpr char kFaaName[] = "FAA";
inline constexpr char kYmcName[] = "YMC*";
inline constexpr char kLcrqName[] = "LCRQ*";
inline constexpr char kMsqName[] = "MSQ";
inline constexpr char kCrTurnName[] = "CRTurn*";

using WcqAdapter = WcqAdapterT<false, kWcqName>;
using WcqPortableAdapter = WcqAdapterT<true, kWcqPortableName>;
using UwcqAdapter = WcqAdapterT<false, kUwcqName>;

using ScqAdapter = BasicAdapter<ScqQueue, kScqName>;
using CcqAdapter = BasicAdapter<ScqQueue, kCcqName>;
using LscqAdapter = BasicAdapter<ScqQueue, kLscqName>;

using FaaAdapter = BasicAdapter<FaaQueue, kFaaName>;
using YmcAdapter = BasicAdapter<FaaQueue, kYmcName>;
using LcrqAdapter = BasicAdapter<FaaQueue, kLcrqName>;

using MsqAdapter = BasicAdapter<MsqQueue, kMsqName>;
using CrTurnAdapter = BasicAdapter<MsqQueue, kCrTurnName>;

}  // namespace wcq::harness
