// xoshiro256** (Blackman & Vigna) seeded via splitmix64 — fast,
// allocation-free per-thread randomness for workload mixes.
#pragma once

#include <cstdint>

namespace wcq {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // splitmix64 expansion so even tiny seeds fill all 256 bits.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return next() % bound;
  }

  // True with probability pct/100.
  bool chance_pct(unsigned pct) { return next_below(100) < pct; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace wcq
