// CPU topology discovery for shard sizing and pinning.
//
// The sharded queue-of-queues layer (wcq/sharded.hpp) wants one shard
// per core cluster — threads sharing an L3 slice (or a cluster_id in
// sysfs terms) should share a shard so the hot ring's cache lines stay
// inside the cluster, while threads on different clusters get
// different rings and never exchange lines at all. This header reads
// that structure from sysfs on Linux and degrades to a single flat
// cluster anywhere else (or when sysfs is absent, e.g. in minimal
// containers), so callers never need a platform branch.
//
// Grouping preference per CPU, most to least specific:
//   1. cache/index3/shared_cpu_list  (an L3 complex, e.g. one CCX)
//   2. topology/cluster_id           (kernel >= 5.16 cluster sched)
//   3. topology/physical_package_id  (the socket)
//   4. everything in cluster 0       (portable fallback)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wcq::topo {

struct CpuTopology {
  unsigned cpus = 1;
  // cluster index -> cpu ids inside it; every online cpu appears in
  // exactly one cluster. Size >= 1 always.
  std::vector<std::vector<unsigned>> clusters;
};

namespace detail_topo {

// First line of a sysfs file, or empty when unreadable.
inline std::string read_line(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[256];
  std::string out;
  if (std::fgets(buf, sizeof(buf), f) != nullptr) {
    out = buf;
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
  }
  std::fclose(f);
  return out;
}

// Parse a sysfs cpu list ("0-3,8-11,15") into ids.
inline std::vector<unsigned> parse_cpu_list(const std::string& s) {
  std::vector<unsigned> out;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtoul(p + 1, &end, 10);
      if (end == p + 1) break;
      p = end;
    }
    for (unsigned long c = lo; c <= hi; ++c) {
      out.push_back(static_cast<unsigned>(c));
    }
    if (*p == ',') ++p;
  }
  return out;
}

inline CpuTopology discover() {
  CpuTopology t;
  const unsigned hw = std::thread::hardware_concurrency();
  t.cpus = hw != 0 ? hw : 1;
#if defined(__linux__)
  const auto online =
      parse_cpu_list(read_line("/sys/devices/system/cpu/online"));
  if (!online.empty()) {
    t.cpus = static_cast<unsigned>(online.size());
    // Group key per cpu: L3 complex when exposed, else cluster id,
    // else package id. Key strings ("l3:0-15" / "cl:1" / "pkg:0") keep
    // the three id spaces from colliding.
    std::vector<std::string> keys;
    std::vector<std::vector<unsigned>> groups;
    for (const unsigned cpu : online) {
      const std::string base =
          "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/";
      std::string key = read_line(base + "cache/index3/shared_cpu_list");
      if (!key.empty()) {
        key = "l3:" + key;
      } else if (std::string cl = read_line(base + "topology/cluster_id");
                 !cl.empty() && cl != "-1") {
        key = "cl:" + cl;
      } else if (std::string pkg =
                     read_line(base + "topology/physical_package_id");
                 !pkg.empty()) {
        key = "pkg:" + pkg;
      }
      std::size_t g = 0;
      for (; g < keys.size(); ++g) {
        if (keys[g] == key) break;
      }
      if (g == keys.size()) {
        keys.push_back(key);
        groups.emplace_back();
      }
      groups[g].push_back(cpu);
    }
    t.clusters = std::move(groups);
  }
#endif
  if (t.clusters.empty()) {
    // Portable fallback: one flat cluster over every assumed cpu.
    t.clusters.emplace_back();
    for (unsigned c = 0; c < t.cpus; ++c) t.clusters[0].push_back(c);
  }
  return t;
}

}  // namespace detail_topo

// Discovered once, shared by every caller (sysfs never changes under
// a running bench; CPU hotplug mid-run is out of scope).
inline const CpuTopology& cpu_topology() {
  static const CpuTopology t = detail_topo::discover();
  return t;
}

inline unsigned floor_pow2(unsigned v) {
  unsigned p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

// Shard count for this machine: floor_pow2(max(clusters, cpus/8)),
// i.e. one shard per core cluster, rounded down to a power of two
// (the sharded layer masks, never divides). On a 1-cluster machine
// the cpus/8 term still spreads a large cpu count over multiple
// shards — ~8 cpus per ring keeps the fan-in below where a single
// FAA point becomes the wall. Always >= 1.
inline unsigned recommended_shards() {
  const CpuTopology& t = cpu_topology();
  unsigned want = static_cast<unsigned>(t.clusters.size());
  const unsigned by_cpus = t.cpus / 8;
  if (by_cpus > want) want = by_cpus;
  if (want == 0) want = 1;
  return floor_pow2(want);
}

// The cpu a given shard's k-th worker should run on: walk the shard's
// cluster round-robin. Shards map onto clusters round-robin too, so
// with shards == clusters the mapping is one-to-one.
inline unsigned shard_cpu(unsigned shard, unsigned worker) {
  const CpuTopology& t = cpu_topology();
  const auto& cluster = t.clusters[shard % t.clusters.size()];
  return cluster[worker % cluster.size()];
}

// Pin the calling thread onto the cluster backing `shard` (no-op off
// Linux). Benches use this for the node-local vs interleaved sweeps.
inline void pin_to_shard_cluster(unsigned shard, unsigned worker) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(shard_cpu(shard, worker), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard;
  (void)worker;
#endif
}

}  // namespace wcq::topo
