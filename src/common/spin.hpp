// Calibrated-ish busy delay used by the Figure 10 memory workload.
#pragma once

#include <cstdint>

#include "wcq/detail.hpp"

namespace wcq {

inline void spin_delay(std::uint64_t iters) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    detail::cpu_pause();
  }
}

}  // namespace wcq
