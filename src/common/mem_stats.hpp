// Harness-side view of memory consumption, two complementary gauges:
//
//  - the counting allocator (wcq/mem.hpp): peak live bytes the
//    algorithm *requested* — exact, allocator-slack-free, but blind to
//    whatever the C++ runtime does underneath. Benches call
//    mem::reset() before a run and mem::stats().peak_bytes after.
//  - the kernel's peak RSS (VmHWM): what the process actually held —
//    includes allocator slack and fragmentation, which is the number a
//    deployment sees. reset_peak_rss() rearms the high-water mark
//    between series (Linux: "5" into /proc/self/clear_refs),
//    peak_rss_bytes() reads it back.
//
// Reporting both keeps Figure 10 honest: a queue that frees promptly
// through the SMR layer shows a low allocator peak *and* a low RSS
// peak; a leak shows up in both; an allocator that hoards shows up
// only in the second.
#pragma once

#include <cstdint>
#include <cstdio>

#include "wcq/mem.hpp"

namespace wcq::mem {

// Peak resident set size in bytes (VmHWM), 0 when unavailable.
inline std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

// Rearm the peak-RSS high-water mark so the next peak_rss_bytes()
// reflects only what happened after this call. Best-effort: returns
// false (and the mark stays cumulative) when the kernel refuses —
// callers should then treat RSS peaks as monotone across series.
inline bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

}  // namespace wcq::mem
