// Harness-side view of the counting allocator (wcq/mem.hpp): the
// benches call mem::reset() before a run and mem::stats().peak_bytes
// after it. Kept as a thin re-export so bench code includes only
// harness/common headers.
#pragma once

#include "wcq/mem.hpp"
