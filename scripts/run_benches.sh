#!/usr/bin/env bash
# Smoke-run every figure/ablation bench binary with small (env-tunable)
# sizes and collect machine-readable results:
#   <outdir>/BENCH_<name>.csv    — the bench's --csv table(s)
#   <outdir>/BENCH_summary.json  — status + timing per bench; for the
#                                  latency-instrumented benches also the
#                                  wCQ p50/p99/p99.9/max row at the
#                                  widest thread count
#
# Usage: scripts/run_benches.sh [--paper|--open-loop|--sharded] [build-dir] [out-dir]
#
# --paper selects the paper's full methodology: 10M ops per data
# point, 10 runs, the thread sweep of the figures (1..144), and the
# 2^16 ring order the options default already matches. Expect hours,
# not minutes. Without it the defaults are CI-sized smoke values.
#
# --open-loop runs only bench_latency_openloop, sized for a meaningful
# response-time distribution (Poisson arrivals at a rate a laptop
# sustains; raise WCQ_BENCH_RATE toward saturation to see queueing
# delay dominate the tail — see docs/BENCHMARKING.md).
#
# --sharded runs only bench_sharded_scaling (the PR 9 shard-sweep:
# shard counts x thread counts x pickers, plus the batch API series)
# and adds a "sharded" fragment to BENCH_summary.json comparing the
# best sharded series against single-ring wCQ at the widest thread
# count. WCQ_BENCH_SHARDS / WCQ_BENCH_BATCH tune the sweep.
#
# Either way the env knobs win when set explicitly:
#   WCQ_BENCH_OPS (default 50000), WCQ_BENCH_RUNS (1),
#   WCQ_BENCH_THREADS (1,2), WCQ_BENCH_RATE / WCQ_BENCH_ARRIVAL
#   (open-loop bench only), WCQ_BENCH_SAMPLE (latency sampling period)
set -u

PRESET=smoke
case "${1:-}" in
  --paper)
    PRESET=paper
    shift
    ;;
  --open-loop)
    PRESET=open-loop
    shift
    ;;
  --sharded)
    PRESET=sharded
    shift
    ;;
esac

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

case "$PRESET" in
  paper)
    export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-10000000}"
    export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-10}"
    export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2,4,8,18,36,72,144}"
    ;;
  open-loop)
    export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-200000}"
    export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-3}"
    export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2,4}"
    export WCQ_BENCH_RATE="${WCQ_BENCH_RATE:-500000}"
    export WCQ_BENCH_ARRIVAL="${WCQ_BENCH_ARRIVAL:-poisson}"
    ;;
  sharded)
    export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-400000}"
    export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-3}"
    export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2,4}"
    ;;
  *)
    export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-50000}"
    export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-1}"
    export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2}"
    ;;
esac

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

if [ "$PRESET" = open-loop ]; then
  benches=$(find "$BUILD_DIR" -maxdepth 1 -type f \
    -name 'bench_latency_openloop' -perm -u+x)
elif [ "$PRESET" = sharded ]; then
  benches=$(find "$BUILD_DIR" -maxdepth 1 -type f \
    -name 'bench_sharded_scaling' -perm -u+x)
else
  benches=$(find "$BUILD_DIR" -maxdepth 1 -type f -name 'bench_*' \
    ! -name 'bench_micro_ops' -perm -u+x | sort)
fi
if [ -z "$benches" ]; then
  echo "error: no bench_* binaries in '$BUILD_DIR'" >&2
  exit 2
fi

# From a latency-instrumented CSV (header carries p50_ns columns),
# emit a JSON fragment with the wCQ percentile row at the widest
# thread count; emit nothing for plain throughput CSVs.
latency_fragment() {
  awk -F, '
    # The bench files carry the human table first, then the CSV block;
    # the header row anywhere in the file announces the latter.
    $1 == "series" {
      delete col
      for (i = 1; i <= NF; ++i) col[$i] = i
      next
    }
    ("p50_ns" in col) && $1 == "wCQ" && ($2 + 0) >= best_x {
      best_x = $2 + 0
      seen = 1
      mops = $(col["mops"]); p50 = $(col["p50_ns"])
      p99 = $(col["p99_ns"]); p999 = $(col["p999_ns"])
      max = $(col["max_ns"])
    }
    END {
      if (seen)
        printf ", \"latency\": {\"series\": \"wCQ\", \"threads\": %d, " \
               "\"mops\": %s, \"p50_ns\": %s, \"p99_ns\": %s, " \
               "\"p999_ns\": %s, \"max_ns\": %s}",
               best_x, mops, p50, p99, p999, max
    }' "$1"
}

# From a shard-sweep CSV, emit a JSON fragment comparing the best
# "shard=" series against the single-ring wCQ baseline at the widest
# thread count (closed-loop rows dominate because the open-loop table's
# achieved throughput is capped at the offered rate). Emits nothing
# when the CSV has no sharded series.
sharded_fragment() {
  awk -F, '
    $1 == "series" {
      delete col
      for (i = 1; i <= NF; ++i) col[$i] = i
      next
    }
    !("mops" in col) || NF < 2 { next }
    { x = $2 + 0; if (x > widest) widest = x }
    $1 == "wCQ" {
      if (x > base_x || (x == base_x && $(col["mops"]) + 0 > base)) {
        base_x = x; base = $(col["mops"]) + 0
      }
    }
    index($1, "shard=") > 0 {
      if (x > best_x || (x == best_x && $(col["mops"]) + 0 > best)) {
        best_x = x; best = $(col["mops"]) + 0; best_name = $1
      }
      # Best config with >= 2 real shards, tracked separately: on a
      # small box shard=1 can win the overall row (pure batch
      # amortization), and the scaling claim should not hide behind it.
      if (index($1, "shard=1/") == 0 &&
          (x > multi_x || (x == multi_x && $(col["mops"]) + 0 > multi))) {
        multi_x = x; multi = $(col["mops"]) + 0; multi_name = $1
      }
    }
    END {
      if (best_x > 0 && base > 0 && best_x == base_x) {
        printf ", \"sharded\": {\"threads\": %d, \"wcq_mops\": %s, " \
               "\"best_series\": \"%s\", \"best_mops\": %s, " \
               "\"speedup\": %.2f",
               best_x, base, best_name, best, best / base
        if (multi_x == base_x && multi > 0)
          printf ", \"best_multi_series\": \"%s\", \"best_multi_mops\": %s, " \
                 "\"multi_speedup\": %.2f",
                 multi_name, multi, multi / base
        printf "}"
      }
    }' "$1"
}

summary="$OUT_DIR/BENCH_summary.json"
{
  echo "{"
  echo "  \"preset\": \"$PRESET\","
  echo "  \"ops\": $WCQ_BENCH_OPS,"
  echo "  \"runs\": $WCQ_BENCH_RUNS,"
  echo "  \"threads\": \"$WCQ_BENCH_THREADS\","
  if [ "$PRESET" = open-loop ]; then
    echo "  \"rate_hz\": $WCQ_BENCH_RATE,"
    echo "  \"arrival\": \"$WCQ_BENCH_ARRIVAL\","
  fi
  echo "  \"benches\": ["
} > "$summary"

failed=0
first=1
for bin in $benches; do
  name=$(basename "$bin")
  csv="$OUT_DIR/BENCH_${name}.csv"
  echo "== $name (ops=$WCQ_BENCH_OPS runs=$WCQ_BENCH_RUNS threads=$WCQ_BENCH_THREADS)"
  start=$(date +%s)
  if "$bin" --csv > "$csv" 2> "$OUT_DIR/BENCH_${name}.log"; then
    status=ok
  else
    status=failed
    failed=1
    echo "   FAILED — see $OUT_DIR/BENCH_${name}.log" >&2
  fi
  elapsed=$(( $(date +%s) - start ))
  latency=$(latency_fragment "$csv")
  shardcmp=$(sharded_fragment "$csv")
  [ "$first" = 1 ] || echo "    ," >> "$summary"
  first=0
  printf '    {"name": "%s", "status": "%s", "seconds": %s, "csv": "%s"%s%s}\n' \
    "$name" "$status" "$elapsed" "BENCH_${name}.csv" "$latency" "$shardcmp" >> "$summary"
done

{
  echo "  ]"
  echo "}"
} >> "$summary"

echo "wrote $summary"
exit $failed
