#!/usr/bin/env bash
# Smoke-run every figure/ablation bench binary with small (env-tunable)
# sizes and collect machine-readable results:
#   <outdir>/BENCH_<name>.csv    — the bench's --csv table(s)
#   <outdir>/BENCH_summary.json  — status + timing per bench
#
# Usage: scripts/run_benches.sh [--paper] [build-dir] [out-dir]
#
# --paper selects the paper's full methodology: 10M ops per data
# point, 10 runs, the thread sweep of the figures (1..144), and the
# 2^16 ring order the options default already matches. Expect hours,
# not minutes. Without it the defaults are CI-sized smoke values.
# Either way the env knobs win when set explicitly:
#   WCQ_BENCH_OPS (default 50000), WCQ_BENCH_RUNS (1),
#   WCQ_BENCH_THREADS (1,2)
set -u

PRESET=smoke
if [ "${1:-}" = "--paper" ]; then
  PRESET=paper
  shift
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [ "$PRESET" = paper ]; then
  export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-10000000}"
  export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-10}"
  export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2,4,8,18,36,72,144}"
else
  export WCQ_BENCH_OPS="${WCQ_BENCH_OPS:-50000}"
  export WCQ_BENCH_RUNS="${WCQ_BENCH_RUNS:-1}"
  export WCQ_BENCH_THREADS="${WCQ_BENCH_THREADS:-1,2}"
fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

benches=$(find "$BUILD_DIR" -maxdepth 1 -type f -name 'bench_*' \
  ! -name 'bench_micro_ops' -perm -u+x | sort)
if [ -z "$benches" ]; then
  echo "error: no bench_* binaries in '$BUILD_DIR'" >&2
  exit 2
fi

summary="$OUT_DIR/BENCH_summary.json"
{
  echo "{"
  echo "  \"preset\": \"$PRESET\","
  echo "  \"ops\": $WCQ_BENCH_OPS,"
  echo "  \"runs\": $WCQ_BENCH_RUNS,"
  echo "  \"threads\": \"$WCQ_BENCH_THREADS\","
  echo "  \"benches\": ["
} > "$summary"

failed=0
first=1
for bin in $benches; do
  name=$(basename "$bin")
  csv="$OUT_DIR/BENCH_${name}.csv"
  echo "== $name (ops=$WCQ_BENCH_OPS runs=$WCQ_BENCH_RUNS threads=$WCQ_BENCH_THREADS)"
  start=$(date +%s)
  if "$bin" --csv > "$csv" 2> "$OUT_DIR/BENCH_${name}.log"; then
    status=ok
  else
    status=failed
    failed=1
    echo "   FAILED — see $OUT_DIR/BENCH_${name}.log" >&2
  fi
  elapsed=$(( $(date +%s) - start ))
  [ "$first" = 1 ] || echo "    ," >> "$summary"
  first=0
  printf '    {"name": "%s", "status": "%s", "seconds": %s, "csv": "%s"}\n' \
    "$name" "$status" "$elapsed" "BENCH_${name}.csv" >> "$summary"
done

{
  echo "  ]"
  echo "}"
} >> "$summary"

echo "wrote $summary"
exit $failed
