// wcq::sharded correctness: the queue-of-queues layer's own contract
// (per-shard FIFO, relaxed cross-shard order), every picker policy,
// the batch API's edge cases (partial fills, zero spans, boxed
// payloads, sentinel refusal, chunking), constructor validation, and
// handle churn over recycled sub-handle rows. The shared battery
// (fifo/empty_full/mpmc/churn) also runs the sharded adapters; this
// file covers what those generic checks cannot see.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/topology.hpp"
#include "queue_test_common.hpp"
#include "wcq/faa_queue.hpp"
#include "wcq/sharded.hpp"

namespace {

using namespace wcq;

constexpr shard_policy kAllPolicies[] = {
    shard_policy::round_robin,
    shard_policy::sticky,
    shard_policy::load_aware,
    shard_policy::sequenced,
};

const char* policy_name(shard_policy p) {
  switch (p) {
    case shard_policy::round_robin:
      return "round_robin";
    case shard_policy::sticky:
      return "sticky";
    case shard_policy::load_aware:
      return "load_aware";
    case shard_policy::sequenced:
      return "sequenced";
  }
  return "?";
}

// MPMC no-loss/no-duplication across shards, every policy. Producers
// tag values; consumers account for every one exactly once. Order is
// deliberately unchecked — cross-shard order is relaxed by contract.
void test_mpmc_all_policies() {
  const std::uint64_t per_producer = test::env_ops(8000);
  for (const auto pol : kAllPolicies) {
    constexpr unsigned kProducers = 3;
    constexpr unsigned kConsumers = 3;
    sharded<std::uint64_t> q(options{}
                                 .order(10)
                                 .shards(4)
                                 .shard_policy(pol)
                                 .max_threads(kProducers + kConsumers + 2));
    const std::uint64_t total = per_producer * kProducers;
    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto& s : seen) s.store(0, std::memory_order_relaxed);
    std::atomic<std::uint64_t> consumed{0};

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          while (!q.try_push(p * per_producer + i, h)) {
            std::this_thread::yield();
          }
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        auto h = q.get_handle();
        while (consumed.load(std::memory_order_acquire) < total) {
          const auto v = q.try_pop(h);
          if (!v) {
            std::this_thread::yield();
            continue;
          }
          WCQ_CHECK(*v < total, "sharded/%s: out-of-range %llu",
                    policy_name(pol), (unsigned long long)*v);
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (std::uint64_t v = 0; v < total; ++v) {
      WCQ_CHECK(seen[v].load() == 1, "sharded/%s: value %llu seen %u times",
                policy_name(pol), (unsigned long long)v, seen[v].load());
    }
    std::printf("  ok sharded_mpmc      %s\n", policy_name(pol));
  }
}

// Per-shard FIFO: values one handle pushes into one shard come back in
// push order. Sticky pins the whole sequence to the handle's home
// shard, making the layer's strongest ordering claim directly
// checkable through the public surface.
void test_per_shard_fifo_sticky() {
  sharded<std::uint64_t> q(
      options{}.order(12).shards(4).shard_policy(shard_policy::sticky));
  auto h = q.get_handle();
  const std::uint64_t n = 500;  // fits one shard (order 12/4 = 1024)
  for (std::uint64_t i = 0; i < n; ++i) {
    WCQ_CHECK(q.try_push(i, h), "sticky push %llu refused",
              (unsigned long long)i);
  }
  // Exactly one shard is non-empty, and it holds everything.
  unsigned loaded = 0;
  for (unsigned s = 0; s < q.shard_count(); ++s) {
    if (q.shard_load(s) != 0) {
      ++loaded;
      WCQ_CHECK(q.shard_load(s) == static_cast<std::int64_t>(n),
                "sticky scattered: shard %u holds %lld of %llu", s,
                (long long)q.shard_load(s), (unsigned long long)n);
    }
  }
  WCQ_CHECK(loaded == 1, "sticky touched %u shards", loaded);
  // Same handle, aligned home: exact FIFO back out.
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && *v == i, "sticky FIFO broken at %llu",
              (unsigned long long)i);
  }
  std::printf("  ok sharded_fifo      sticky per-shard order\n");
}

// Sticky rebalance: filling the home shard must move the handle to a
// new home (push keeps succeeding past one shard's capacity), and a
// pop on an empty home must find the data wherever it lives.
void test_sticky_rebalance() {
  // 4 shards x 16 slots each
  sharded<std::uint64_t> q(
      options{}.order(6).shards(4).shard_policy(shard_policy::sticky));
  auto h = q.get_handle();
  // Full capacity must be reachable despite per-shard rings of 16:
  // each overflow rebalances the home to the shard that accepted.
  for (std::uint64_t i = 0; i < 64; ++i) {
    WCQ_CHECK(q.try_push(i, h), "rebalance push %llu refused",
              (unsigned long long)i);
  }
  WCQ_CHECK(!q.try_push(999, h), "push past total capacity succeeded");
  unsigned non_empty = 0;
  for (unsigned s = 0; s < 4; ++s) non_empty += q.shard_load(s) != 0;
  WCQ_CHECK(non_empty == 4, "rebalance-on-full reached %u of 4 shards",
            non_empty);

  // A second handle (different home) drains everything: rebalance-on-
  // empty walks it across all shards.
  auto h2 = q.get_handle();
  unsigned got = 0;
  while (q.try_pop(h2)) ++got;
  WCQ_CHECK(got == 64, "rebalance-on-empty drained %u of 64", got);
  std::printf("  ok sharded_rebalance sticky full/empty\n");
}

// Sequenced policy restores exact global FIFO even though values
// spread across shards: push k and pop k meet at the same shard
// because tickets are only consumed on success.
void test_sequenced_global_fifo() {
  sharded<std::uint64_t> q(
      options{}.order(10).shards(4).shard_policy(shard_policy::sequenced));
  auto h = q.get_handle();
  const std::uint64_t n = 700;
  for (std::uint64_t i = 0; i < n; ++i) {
    WCQ_CHECK(q.try_push(i, h), "sequenced push refused");
  }
  // All four shards hold a slice — this is not one-shard FIFO.
  for (unsigned s = 0; s < 4; ++s) {
    WCQ_CHECK(q.shard_load(s) > 0, "sequenced skipped shard %u", s);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && *v == i, "sequenced global FIFO broken at %llu: got %llu",
              (unsigned long long)i, (unsigned long long)(v ? *v : ~0ull));
  }
  std::printf("  ok sharded_sequenced global FIFO across shards\n");
}

// Batch edges: zero-size spans, spans above batch_limit (chunking),
// partial acceptance at capacity, and partial pops at drain.
void test_batch_edges() {
  sharded<std::uint64_t> q(options{}.order(8).shards(4).batch_limit(16));
  auto h = q.get_handle();

  std::uint64_t none = 0;
  WCQ_CHECK(q.try_push_n(&none, 0, h) == 0, "zero-size push_n");
  WCQ_CHECK(q.try_pop_n(&none, 0, h) == 0, "zero-size pop_n");

  // 200 values through batch_limit=16 chunks.
  std::vector<std::uint64_t> in(200), out(200);
  for (std::uint64_t i = 0; i < 200; ++i) in[i] = i;
  WCQ_CHECK(q.try_push_n(in.data(), 200, h) == 200, "chunked push_n");
  std::size_t got = 0;
  while (got < 200) {
    const std::size_t k = q.try_pop_n(out.data() + got, 200 - got, h);
    WCQ_CHECK(k > 0, "pop_n stalled at %zu of 200", got);
    got += k;
  }
  std::vector<bool> seen(200, false);
  for (std::uint64_t v : out) {
    WCQ_CHECK(v < 200 && !seen[v], "batch lost/duplicated %llu",
              (unsigned long long)v);
    seen[v] = true;
  }
  WCQ_CHECK(q.try_pop_n(out.data(), 200, h) == 0, "drained pop_n not 0");

  // Partial acceptance: capacity 256, offer 300 — exactly 256 land.
  std::vector<std::uint64_t> big(300, 7);
  WCQ_CHECK(q.try_push_n(big.data(), 300, h) == 256,
            "partial push_n at capacity");
  WCQ_CHECK(q.try_push(1, h) == false, "queue should be full");
  got = 0;
  while (got < 256) got += q.try_pop_n(out.data(), 200, h);
  WCQ_CHECK(got == 256, "partial drain got %zu", got);
  std::printf("  ok sharded_batch     edges (zero/chunk/partial)\n");
}

// Boxed payloads batch exactly like inline ones: every value goes
// through slot_codec's heap box, refused boxes are dropped (ASan
// leak-checks this binary), and teardown drains live boxes.
void test_batch_boxed() {
  sharded<std::string> q(options{}.order(8).shards(2).batch_limit(8));
  auto h = q.get_handle();
  std::vector<std::string> in, out(64);
  for (int i = 0; i < 64; ++i) in.push_back("value-" + std::to_string(i));
  WCQ_CHECK(q.try_push_n(in.data(), in.size(), h) == 64, "boxed push_n");
  std::size_t got = 0;
  while (got < 64) {
    const std::size_t k = q.try_pop_n(out.data() + got, 64 - got, h);
    WCQ_CHECK(k > 0, "boxed pop_n stalled");
    got += k;
  }
  std::vector<bool> seen(64, false);
  for (const auto& s : out) {
    WCQ_CHECK(s.rfind("value-", 0) == 0, "boxed payload corrupted: %s",
              s.c_str());
    const int i = std::atoi(s.c_str() + 6);
    WCQ_CHECK(!seen[i], "boxed duplicate %d", i);
    seen[i] = true;
  }
  // Overfill: capacity 256 total; refused boxes must not leak.
  std::vector<std::string> flood(300, std::string("flood"));
  const std::size_t ok = q.try_push_n(flood.data(), flood.size(), h);
  WCQ_CHECK(ok == 256, "boxed overfill accepted %zu", ok);
  // Leave the queue non-empty: the destructor must drop live boxes.
  std::printf("  ok sharded_boxed     batch over slot_codec boxes\n");
}

// FAA reserves its top two slot patterns as EMPTY/TAKEN sentinels; an
// inline value colliding with them must be refused — mid-batch — with
// everything before it accepted and nothing after it lost.
void test_batch_sentinel_refusal() {
  sharded<std::uint64_t, FaaQueue> q(options{}.shards(2).batch_limit(8));
  auto h = q.get_handle();
  std::uint64_t vs[5] = {1, 2, ~std::uint64_t{0}, 4, 5};
  WCQ_CHECK(q.try_push_n(vs, 5, h) == 2,
            "sentinel must stop the batch after the accepted prefix");
  std::uint64_t out[5] = {};
  WCQ_CHECK(q.try_pop_n(out, 5, h) == 2 && out[0] == 1 && out[1] == 2,
            "prefix before sentinel lost");
  // Single-op refusal for comparison (same contract as queue<T,Faa>).
  WCQ_CHECK(!q.try_push(~std::uint64_t{0}, h), "sentinel push accepted");
  std::printf("  ok sharded_sentinel  FAA reserved-pattern refusal\n");
}

// Constructor validation: refuse, never clamp.
void test_validation_throws() {
  auto throws = [](auto make) {
    try {
      make();
    } catch (const std::invalid_argument&) {
      return true;
    }
    return false;
  };
  WCQ_CHECK(throws([] { sharded<std::uint64_t> q(options{}.shards(3)); }),
            "non-power-of-two shards must throw");
  WCQ_CHECK(throws([] { sharded<std::uint64_t> q(options{}.shards(512)); }),
            "shards > 256 must throw");
  WCQ_CHECK(
      throws([] { sharded<std::uint64_t> q(options{}.shards(8).order(3)); }),
      "order <= log2(shards) must throw");
  WCQ_CHECK(
      throws([] {
        sharded<std::uint64_t> q(options{}.shards(2).batch_limit(0));
      }),
      "batch_limit 0 must throw");
  // The boundary cases that must NOT throw.
  sharded<std::uint64_t> ok1(options{}.shards(1).order(1));
  sharded<std::uint64_t> ok2(options{}.shards(4).order(3));
  std::printf("  ok sharded_validate  invalid_argument on bad knobs\n");
}

// Handle churn: sharded handles hold one sub-handle per shard; waves
// of threads far past max_threads must recycle whole rows, and
// exhaustion must be a reportable error, not an abort.
void test_handle_churn() {
  constexpr unsigned kMaxThreads = 4;
  sharded<std::uint64_t> q(
      options{}.order(8).shards(4).max_threads(kMaxThreads));
  for (unsigned wave = 0; wave < 8; ++wave) {
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kMaxThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = q.get_handle();
        for (std::uint64_t i = 0; i < 200; ++i) {
          while (!q.try_push(t * 1000 + i, h)) std::this_thread::yield();
          while (!q.try_pop(h)) std::this_thread::yield();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  // Exhaustion at the boundary: kMaxThreads rows live -> next is an
  // error; releasing one row frees a slot in every shard.
  {
    std::vector<decltype(q.get_handle())> held;
    for (unsigned i = 0; i < kMaxThreads; ++i) held.push_back(q.get_handle());
    WCQ_CHECK(!q.try_get_handle().has_value(),
              "exhaustion must be nullopt, not abort");
    bool threw = false;
    try {
      (void)q.get_handle();
    } catch (const std::runtime_error&) {
      threw = true;
    }
    WCQ_CHECK(threw, "get_handle must throw on exhaustion");
    held.pop_back();
    WCQ_CHECK(q.try_get_handle().has_value(),
              "released row must free a slot in every shard");
  }
  std::printf("  ok sharded_churn     %u waves over max_threads=%u\n", 8u,
              kMaxThreads);
}

// Topology helper sanity: it must never lie about structure (every
// online cpu in exactly one cluster) and its recommendations must be
// usable sharded configs on any machine.
void test_topology_helper() {
  const auto& t = topo::cpu_topology();
  WCQ_CHECK(t.cpus >= 1, "topology lost the cpus");
  WCQ_CHECK(!t.clusters.empty(), "topology must report >= 1 cluster");
  unsigned covered = 0;
  for (const auto& c : t.clusters) {
    WCQ_CHECK(!c.empty(), "empty cluster");
    covered += static_cast<unsigned>(c.size());
  }
  WCQ_CHECK(covered == t.cpus, "clusters cover %u of %u cpus", covered,
            t.cpus);
  const unsigned rec = topo::recommended_shards();
  WCQ_CHECK(rec >= 1 && (rec & (rec - 1)) == 0,
            "recommended_shards %u not a power of two", rec);
  // The recommendation must construct (order 16 default leaves room).
  sharded<std::uint64_t> q(options{}.shards(rec));
  WCQ_CHECK(q.shard_count() == rec, "shard_count mismatch");
  (void)topo::shard_cpu(0, 0);  // must not crash on any machine
  std::printf("  ok sharded_topology  %u cpus / %zu clusters -> %u shards\n",
              t.cpus, t.clusters.size(), rec);
}

}  // namespace

int main() {
  test_mpmc_all_policies();
  test_per_shard_fifo_sticky();
  test_sticky_rebalance();
  test_sequenced_global_fifo();
  test_batch_edges();
  test_batch_boxed();
  test_batch_sentinel_refusal();
  test_validation_throws();
  test_handle_churn();
  test_topology_helper();
  return 0;
}
