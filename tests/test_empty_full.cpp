// Empty-dequeue behaviour for every queue, and full-ring refusal for
// the bounded ones (wCQ and the bounded SCQ family: NCQ, CCQ, SCQ;
// FAA, MSQ, LCRQ and LSCQ are unbounded by design — the linked-ring
// queues append a fresh ring/segment instead of refusing).
#include "queue_test_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq;
  using namespace wcq::test;
  auto fn = []<typename A>(const char* tag) { test_empty_dequeue<A>(tag); };
  const int rc = for_selected_queues(argc, argv, fn);
  if (rc != 0) return rc;

  if (selected(argc, argv, "wcq")) {
    test_full_ring<harness::WcqAdapter>("wcq");
  }
  if (selected(argc, argv, "wcq-portable")) {
    test_full_ring<harness::WcqPortableAdapter>("wcq-portable");
  }
  if (selected(argc, argv, "scq")) {
    test_full_ring<harness::ScqAdapter>("scq");
  }
  if (selected(argc, argv, "ncq")) {
    test_full_ring<harness::NcqAdapter>("ncq");
  }
  if (selected(argc, argv, "ccq")) {
    test_full_ring<harness::CcqAdapter>("ccq");
  }
  return 0;
}
