// Soak/liveness test: MPMC churn under randomized preemption injection
// with a starvation watchdog asserting that no queue operation stays
// in flight past a generous wall-clock bound.
//
// wCQ's guarantee is per-operation progress in bounded steps. Steps
// are not directly observable from outside, so the test makes the
// adversary explicit — workers randomly sched-yield in bursts or burn
// busy-spin windows between ops while the box is oversubscribed (more
// workers than cores), which preempts *other* workers mid-operation —
// and the watchdog converts "an op has been in flight for many
// seconds" into an attributed abort. A livelocked helper protocol or
// a lost request record shows up here as a watchdog violation (or the
// accounting check failing), not as a silent ctest timeout.
//
// Two phases: default options (fast path dominant), then patience=1
// with help_delay=1 on a tiny ring, where every operation runs the
// CAS2 note-based cooperative slow path under helping traffic.
//
// Sized for ctest by default; the nightly TSan lane turns the knobs:
//   WCQ_SOAK_SECONDS   total soak wall-clock across phases (def 2)
//   WCQ_SOAK_THREADS   workers per phase (def 4)
//   WCQ_SOAK_STALL_MS  per-op in-flight bound (def 10000)
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin.hpp"
#include "harness/latency.hpp"
#include "harness/watchdog.hpp"
#include "queue_test_common.hpp"

namespace {

using namespace wcq;

double env_double(const char* name, double dflt) {
  if (const char* v = std::getenv(name); v && *v) {
    return std::strtod(v, nullptr);
  }
  return dflt;
}

unsigned env_unsigned(const char* name, unsigned dflt) {
  if (const char* v = std::getenv(name); v && *v) {
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  return dflt;
}

template <concepts::Queue Q>
void soak_phase(const char* tag, const options& opts, unsigned threads,
                double seconds, std::uint64_t stall_ms) {
  Q q(opts);
  harness::StarvationWatchdog dog(
      threads, std::chrono::milliseconds(stall_ms), /*fatal=*/true);
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> popped{0};
  const std::uint64_t end_ns =
      harness::now_ns() +
      static_cast<std::uint64_t>(seconds * 1e9);

  dog.start();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      Xoshiro256 rng(0x50ACu + t * 65537u);
      std::uint64_t my_pushed = 0;
      std::uint64_t my_popped = 0;
      while (harness::now_ns() < end_ns) {
        // Preemption injection, between ops: a yield burst hands the
        // core to a peer mid-*its*-op on an oversubscribed box; a
        // busy-spin window simulates a stalled-but-running thread.
        if (rng.chance_pct(2)) {
          const unsigned burst = 1 + static_cast<unsigned>(rng.next_below(8));
          for (unsigned k = 0; k < burst; ++k) std::this_thread::yield();
        } else if (rng.chance_pct(1)) {
          spin_delay(rng.next_below(4000));
        }
        dog.op_begin(t);
        if (rng.chance_pct(50)) {
          if (q.try_push(t, h)) ++my_pushed;
        } else {
          if (q.try_pop(h).has_value()) ++my_popped;
        }
        dog.op_end(t);
      }
      pushed.fetch_add(my_pushed, std::memory_order_acq_rel);
      popped.fetch_add(my_popped, std::memory_order_acq_rel);
    });
  }
  for (auto& w : workers) w.join();
  dog.stop();

  // Accounting: nothing lost, nothing invented.
  std::uint64_t drained = 0;
  {
    auto h = q.get_handle();
    while (q.try_pop(h).has_value()) ++drained;
  }
  WCQ_CHECK(pushed.load() == popped.load() + drained,
            "%s: pushed %llu != popped %llu + drained %llu", tag,
            (unsigned long long)pushed.load(),
            (unsigned long long)popped.load(), (unsigned long long)drained);

  const auto rep = dog.report();
  WCQ_CHECK(rep.violations == 0,
            "%s: %llu watchdog violations (max stall %.3f s)", tag,
            (unsigned long long)rep.violations,
            static_cast<double>(rep.max_stall_ns) / 1e9);
  // Wait-freedom is per-thread: every worker must have completed ops,
  // injection or not.
  for (unsigned t = 0; t < threads; ++t) {
    WCQ_CHECK(dog.ops(t) > 0, "%s: thread %u starved (0 ops)", tag, t);
  }
  std::printf(
      "  ok soak %-10s %u threads, %.1fs: %llu ops, max in-flight %.3f ms\n",
      tag, threads, seconds, (unsigned long long)rep.total_ops,
      static_cast<double>(rep.max_stall_ns) / 1e6);
}

}  // namespace

int main() {
  const double total_s = env_double("WCQ_SOAK_SECONDS", 2.0);
  const unsigned threads = env_unsigned("WCQ_SOAK_THREADS", 4);
  const auto stall_ms =
      static_cast<std::uint64_t>(env_unsigned("WCQ_SOAK_STALL_MS", 10000));
  const double per_phase = total_s / 2.0;

  // Phase 1: defaults — fast path dominant, ring small enough that
  // full/empty edges and the threshold logic stay hot.
  soak_phase<harness::WcqAdapter>(
      "default", options{}.order(10).max_threads(threads + 2), threads,
      per_phase, stall_ms);

  // Phase 2: every op out of patience on a tiny ring with eager
  // helping — the cooperative CAS2 note protocol carries the entire
  // soak, under the same injection.
  soak_phase<harness::WcqAdapter>(
      "patience=1",
      options{}.order(6).max_threads(threads + 2).patience(1, 1).help_delay(
          1),
      threads, per_phase, stall_ms);

  return 0;
}
