// Unit checks for the measurement harness itself: SeriesTable output,
// CSV emission, RNG distribution sanity, the counting allocator, and
// repeat_measure actually running setup/body the advertised number of
// times.
#include <sstream>

#include "common/mem_stats.hpp"
#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/reporting.hpp"
#include "queue_test_common.hpp"

namespace {

using namespace wcq;

void test_series_table() {
  harness::SeriesTable t("demo", "threads", "Mops");
  t.set("A", 1, 1.5);
  t.set("A", 2, 2.5);
  t.set("B", 2, 3.25);
  std::ostringstream table;
  t.print(table);
  const std::string s = table.str();
  WCQ_CHECK(s.find("demo") != std::string::npos, "title missing");
  WCQ_CHECK(s.find("A") != std::string::npos, "series A missing");
  std::ostringstream csv;
  t.print_csv(csv);
  const std::string c = csv.str();
  WCQ_CHECK(c.find("series,threads,Mops") != std::string::npos,
            "csv header missing: %s", c.c_str());
  WCQ_CHECK(c.find("A,1,1.5") != std::string::npos, "csv row missing: %s",
            c.c_str());
  WCQ_CHECK(c.find("B,2,3.25") != std::string::npos, "csv row missing: %s",
            c.c_str());
  std::printf("  ok series_table\n");
}

void test_want_csv() {
  const char* no_args[] = {"prog"};
  const char* with_csv[] = {"prog", "--csv"};
  WCQ_CHECK(!harness::want_csv(1, const_cast<char**>(no_args)), "no-arg");
  WCQ_CHECK(harness::want_csv(2, const_cast<char**>(with_csv)), "--csv");
  std::printf("  ok want_csv\n");
}

void test_rng() {
  Xoshiro256 rng(42);
  std::uint64_t heads = 0;
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (rng.chance_pct(50)) ++heads;
    const std::uint64_t b = rng.next_below(17);
    WCQ_CHECK(b < 17, "next_below out of range: %llu",
              (unsigned long long)b);
  }
  // 50% coin over 100k flips: allow +-2% (way beyond 6 sigma).
  WCQ_CHECK(heads > n / 2 - n / 50 && heads < n / 2 + n / 50,
            "biased coin: %llu/%llu", (unsigned long long)heads,
            (unsigned long long)n);
  // Distinct seeds must diverge.
  Xoshiro256 a(1), b2(2);
  WCQ_CHECK(a.next() != b2.next(), "seeds 1 and 2 collide");
  std::printf("  ok rng\n");
}

void test_mem_counter() {
  mem::reset();
  void* p = mem::alloc(1000);
  WCQ_CHECK(mem::stats().live_bytes == 1000, "live after alloc");
  void* q = mem::alloc(500);
  WCQ_CHECK(mem::stats().peak_bytes == 1500, "peak after two allocs");
  mem::free(p, 1000);
  WCQ_CHECK(mem::stats().live_bytes == 500, "live after free");
  WCQ_CHECK(mem::stats().peak_bytes == 1500, "peak is sticky");
  mem::free(q, 500);
  mem::reset();
  WCQ_CHECK(mem::stats().peak_bytes == 0, "reset clears peak");
  std::printf("  ok mem_counter\n");
}

void test_repeat_measure() {
  std::atomic<unsigned> setups{0};
  std::atomic<unsigned> bodies{0};
  const auto res = harness::repeat_measure(
      3, 2, 1000, [&] { setups.fetch_add(1); },
      [&](unsigned worker) {
        WCQ_CHECK(worker < 2, "worker id out of range");
        bodies.fetch_add(1);
      });
  WCQ_CHECK(setups.load() == 3, "setup ran %u times", setups.load());
  WCQ_CHECK(bodies.load() == 6, "body ran %u times", bodies.load());
  WCQ_CHECK(res.mean_mops > 0.0, "throughput not positive");
  std::printf("  ok repeat_measure\n");
}

void test_sweep_parse() {
#if defined(__linux__)
  setenv("WCQ_BENCH_THREADS", "1,2, 8", 1);
  const auto sweep = harness::sweep_thread_counts();
  WCQ_CHECK(sweep.size() == 3 && sweep[0] == 1 && sweep[1] == 2 &&
                sweep[2] == 8,
            "parsed %zu entries", sweep.size());
  unsetenv("WCQ_BENCH_THREADS");
#endif
  std::printf("  ok sweep_parse\n");
}

}  // namespace

int main() {
  test_series_table();
  test_want_csv();
  test_rng();
  test_mem_counter();
  test_repeat_measure();
  test_sweep_parse();
  return 0;
}
