// Single-thread FIFO order for every queue (optionally filtered by
// argv: wcq wcq-portable scq faa msq).
#include "queue_test_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq::test;
  auto fn = []<typename A>(const char* tag) { test_fifo_order<A>(tag); };
  return for_selected_queues(argc, argv, fn);
}
