// Thread-churn and handle-recycling coverage: the scenario the old
// surface could not survive. make_handle() used to burn one ThreadRec
// slot per *lifetime* registration and abort() past max_threads; with
// RAII handles the slot returns to a free list on destruction, so
// max_threads bounds concurrent participants only. These tests spawn
// far more threads over a queue's lifetime than max_threads allows
// concurrently, run MPMC traffic in every wave, and check no loss, no
// duplication, no abort, consistent stats, and a real (non-fatal)
// error on genuine exhaustion.
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "queue_test_common.hpp"
#include "wcq/mem.hpp"
#include "wcq/queue.hpp"
#include "wcq/wcq.hpp"

namespace {

using namespace wcq;

// Waves of producer/consumer threads over ONE queue. Each wave fully
// joins (releasing its handles) before the next starts; cumulative
// thread count is far above max_threads, which the old surface would
// have abort()ed on at wave 2.
template <concepts::Queue Q>
void test_churn_waves(const char* name) {
  constexpr unsigned kMaxThreads = 8;
  constexpr unsigned kWaves = 6;
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  static_assert(kProducers + kConsumers <= kMaxThreads);
  static_assert(kWaves * (kProducers + kConsumers) > 4 * kMaxThreads,
                "churn must exceed max_threads several times over");

  const std::uint64_t per_producer = test::env_ops(4000);
  Q q(options{}.max_threads(kMaxThreads).order(8));

  const std::uint64_t wave_total = per_producer * kProducers;
  std::atomic<std::uint64_t> push_attempts{0};
  std::atomic<std::uint64_t> pop_attempts{0};

  for (unsigned wave = 0; wave < kWaves; ++wave) {
    std::vector<std::atomic<std::uint32_t>> seen(wave_total);
    for (auto& s : seen) s.store(0, std::memory_order_relaxed);
    std::atomic<std::uint64_t> consumed{0};

    std::vector<std::thread> threads;
    threads.reserve(kProducers + kConsumers);
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();  // fresh registration every wave
        std::uint64_t attempts = 0;
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          const std::uint64_t v = p * per_producer + i;
          ++attempts;
          while (!q.try_push(v, h)) {
            ++attempts;
            std::this_thread::yield();
          }
        }
        push_attempts.fetch_add(attempts, std::memory_order_relaxed);
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        auto h = q.get_handle();
        std::uint64_t attempts = 0;
        while (consumed.load(std::memory_order_acquire) < wave_total) {
          ++attempts;
          const auto v = q.try_pop(h);
          if (!v) {
            std::this_thread::yield();
            continue;
          }
          WCQ_CHECK(*v < wave_total, "%s: wave %u out-of-range value %llu",
                    name, wave, (unsigned long long)*v);
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
        pop_attempts.fetch_add(attempts, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();

    for (std::uint64_t v = 0; v < wave_total; ++v) {
      const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
      WCQ_CHECK(count == 1,
                "%s: wave %u value %llu seen %u times (lost/duplicated)",
                name, wave, (unsigned long long)v, count);
    }
  }

  // Stats must stay consistent across recycled slots: every push/pop
  // attempt of every wave landed in exactly one fast/slow counter,
  // regardless of which (reused) ThreadRec slot recorded it.
  if constexpr (requires { q.stats(); }) {
    const auto st = q.stats();
    WCQ_CHECK(st.fast_enqueues + st.slow_enqueues ==
                  push_attempts.load(std::memory_order_relaxed),
              "%s: stats enqueues %llu != attempts %llu", name,
              (unsigned long long)(st.fast_enqueues + st.slow_enqueues),
              (unsigned long long)push_attempts.load());
    WCQ_CHECK(st.fast_dequeues + st.slow_dequeues ==
                  pop_attempts.load(std::memory_order_relaxed),
              "%s: stats dequeues %llu != attempts %llu", name,
              (unsigned long long)(st.fast_dequeues + st.slow_dequeues),
              (unsigned long long)pop_attempts.load());
  }
  std::printf("  ok churn_waves       %s (%u threads over max_threads=%u)\n",
              name, kWaves * (kProducers + kConsumers), kMaxThreads);
}

// LSCQ churn over order-4 segments (16 values each): producers outrun
// a segment every few hundred ops, so close(), the sterility drain,
// and concurrent segment retirement all run under contention — under
// TSan this is the race net for the whole finalization path. The
// parked-segment count must stay under the SMR amnesty bound and the
// teardown must return every segment to the counting allocator.
void test_lscq_segment_retirement() {
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  const std::uint64_t per_producer = test::env_ops(8000);
  const std::uint64_t total = per_producer * kProducers;

  const auto mem_before = mem::stats().live_bytes;
  std::uint64_t retire_calls = 0;
  {
    harness::LscqAdapter q(
        options{}.max_threads(kProducers + kConsumers).order(4));

    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto& s : seen) s.store(0, std::memory_order_relaxed);
    std::atomic<std::uint64_t> consumed{0};

    std::vector<std::thread> threads;
    threads.reserve(kProducers + kConsumers);
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          const std::uint64_t v = p * per_producer + i;
          while (!q.try_push(v, h)) std::this_thread::yield();
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        auto h = q.get_handle();
        while (consumed.load(std::memory_order_acquire) < total) {
          const auto v = q.try_pop(h);
          if (!v) {
            std::this_thread::yield();
            continue;
          }
          WCQ_CHECK(*v < total, "lscq: out-of-range value %llu",
                    (unsigned long long)*v);
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& t : threads) t.join();

    for (std::uint64_t v = 0; v < total; ++v) {
      const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
      WCQ_CHECK(count == 1,
                "lscq: value %llu seen %u times (lost/duplicated)",
                (unsigned long long)v, count);
    }

    const auto st = q.smr_stats();
    retire_calls = st.retire_calls;
    WCQ_CHECK(st.retire_calls > 0,
              "lscq churn never retired a segment (drain path untested)");
    WCQ_CHECK(st.reclaimed_nodes > 0,
              "lscq churn reclaimed nothing (%llu retires parked forever?)",
              (unsigned long long)st.retire_calls);
    // Bound: every handle slot can park at most threshold segments,
    // plus one hazard-held segment per slot that scans could not free.
    const std::uint64_t slots = kProducers + kConsumers;
    WCQ_CHECK(st.retired_nodes <= slots * (2 * slots) + slots,
              "parked segments exceed the amnesty bound: %llu",
              (unsigned long long)st.retired_nodes);
  }
  WCQ_CHECK(mem::stats().live_bytes == mem_before,
            "LSCQ leaked %llu bytes of segments",
            (unsigned long long)(mem::stats().live_bytes - mem_before));
  std::printf("  ok churn_lscq_retire (%llu segment retires)\n",
              (unsigned long long)retire_calls);
}

// Genuine exhaustion (max_threads handles simultaneously live) must be
// a reportable error — nullopt from try_get_handle, an exception from
// get_handle — never an abort; and releasing one handle must make a
// slot available again.
void test_exhaustion_is_an_error() {
  queue<std::uint64_t> q(options{}.max_threads(2).order(4));

  auto h1 = q.try_get_handle();
  auto h2 = q.try_get_handle();
  WCQ_CHECK(h1.has_value() && h2.has_value(),
            "first max_threads handles must be granted");

  WCQ_CHECK(!q.try_get_handle().has_value(),
            "try_get_handle must report exhaustion as nullopt");
  bool threw = false;
  try {
    (void)q.get_handle();
  } catch (const std::runtime_error&) {
    threw = true;
  }
  WCQ_CHECK(threw, "get_handle must throw on exhaustion, not abort");

  // The live handles still work at the exhaustion boundary.
  WCQ_CHECK(q.try_push(7, *h1), "push through live handle refused");
  const auto v = q.try_pop(*h2);
  WCQ_CHECK(v && *v == 7, "pop through live handle failed");

  h1.reset();  // RAII release frees the slot...
  auto h3 = q.try_get_handle();
  WCQ_CHECK(h3.has_value(), "released slot must be reusable");
  std::printf("  ok churn_exhaustion\n");
}

// Serial churn far past max_threads: every iteration registers and
// releases one handle; the old surface aborts at iteration 4.
void test_serial_handle_recycling() {
  queue<std::uint64_t> q(options{}.max_threads(4).order(4));
  for (unsigned i = 0; i < 1000; ++i) {
    auto h = q.get_handle();
    WCQ_CHECK(q.try_push(i, h), "serial push %u refused", i);
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && *v == i, "serial roundtrip %u failed", i);
  }
  const auto st = q.stats();
  WCQ_CHECK(st.fast_enqueues + st.slow_enqueues == 1000,
            "serial stats lost ops across recycling: %llu",
            (unsigned long long)(st.fast_enqueues + st.slow_enqueues));
  std::printf("  ok churn_serial      (1000 handles over max_threads=4)\n");
}

// Handles are movable RAII: moving must transfer the registration, and
// the moved-from handle's destruction must not double-release.
void test_handle_move_semantics() {
  queue<std::uint64_t> q(options{}.max_threads(2).order(4));
  auto h1 = q.get_handle();
  auto h2 = std::move(h1);
  WCQ_CHECK(q.try_push(11, h2), "push through moved-to handle refused");
  const auto v = q.try_pop(h2);
  WCQ_CHECK(v && *v == 11, "pop through moved-to handle failed");
  {
    auto h3 = q.get_handle();  // second (and last) slot
    WCQ_CHECK(!q.try_get_handle().has_value(), "expected exhaustion");
    h2 = std::move(h3);  // move-assign releases h2's old slot
    auto h4 = q.try_get_handle();
    WCQ_CHECK(h4.has_value(), "move-assign must release the old slot");
  }
  std::printf("  ok churn_move\n");
}

}  // namespace

int main() {
  using namespace wcq::harness;
  test_churn_waves<WcqAdapter>("wcq");
  test_churn_waves<WcqPortableAdapter>("wcq-portable");
  // Stateless-handle backends must survive the same churn shape.
  test_churn_waves<ScqAdapter>("scq");
  test_churn_waves<NcqAdapter>("ncq");
  test_churn_waves<CcqAdapter>("ccq");
  // SMR-backed backends: recycling a handle slot also hands its
  // hazard/epoch strip and parked retire list to the next wave.
  test_churn_waves<MsqAdapter>("msq");
  test_churn_waves<FaaAdapter>("faa");
  test_churn_waves<LcrqAdapter>("lcrq");
  // LSCQ: every wave also churns segments through close/drain/retire.
  test_churn_waves<LscqAdapter>("lscq");
  test_lscq_segment_retirement();
  // Sharded handles register with every shard at once; each wave must
  // recycle a full row of sub-handle slots, not just one.
  test_churn_waves<ShardedWcqAdapter>("sharded-wcq");
  test_churn_waves<ShardedLcrqAdapter>("sharded-lcrq");
  test_exhaustion_is_an_error();
  test_serial_handle_recycling();
  test_handle_move_semantics();
  return 0;
}
