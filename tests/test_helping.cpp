// Deterministic coverage for wCQ's helper-completion path: the owner
// publishes a ring request and then "stalls" (never drives it, via the
// WcqTestAccess backdoor); a peer doing its own operations must pick
// the request up through help_threads and finalize it through the
// note protocol. On real schedules this window is nanoseconds wide, so
// timing alone cannot exercise it — this is the wait-freedom scenario
// made reproducible.
#include "queue_test_common.hpp"
#include "wcq/wcq.hpp"

namespace {

template <bool Portable>
void test_helper_completes_stalled_ops(const char* name) {
  using Access = wcq::WcqTestAccess<Portable>;
  using Queue = wcq::WcqQueueT<Portable>;
  // help_delay=1: helper checks a peer on every own op
  Queue q(wcq::options{}.order(4).max_threads(4).help_delay(1));
  auto stalled = q.get_handle();
  auto helper = q.get_handle();

  // --- stalled enqueue(777): the owner already holds its free index
  // and published the fq-enqueue request; the helper's own (empty)
  // dequeues must complete it, after which the value is really queued.
  WCQ_CHECK(Access::publish_stalled_push(q, stalled, 777),
            "%s: fresh queue had no free index", name);
  std::uint64_t v = 0;
  bool got777 = false;
  int spins = 0;
  while (!Access::done_ok(q, stalled)) {
    // The loop dequeue may consume 777 the moment the help lands.
    if (q.try_pop(&v, helper) && v == 777) got777 = true;
    WCQ_CHECK(++spins < 1000, "%s: helper never completed the enqueue",
              name);
  }
  WCQ_CHECK(Access::finish_push(q, stalled), "%s: stalled enqueue failed",
            name);
  if (!got777) {
    WCQ_CHECK(q.try_pop(&v, helper) && v == 777,
              "%s: helped enqueue value lost (got %llu)", name,
              (unsigned long long)v);
  }

  // --- stalled dequeue: put one value in, publish the request, and
  // drive the helper with enqueue/dequeue churn until it finalizes.
  WCQ_CHECK(q.try_push(888, helper), "%s: seed enqueue refused", name);
  Access::publish_stalled_pop(q, stalled);
  spins = 0;
  while (!Access::done_ok(q, stalled)) {
    // Churn on a disjoint value; the helper must hand 888 (FIFO head)
    // to the stalled requester, not consume it itself. maybe_help runs
    // before the helper's own ring access, so the request claims 888.
    (void)q.try_push(5, helper);
    (void)q.try_pop(&v, helper);
    WCQ_CHECK(++spins < 1000, "%s: helper never completed the dequeue",
              name);
  }
  std::uint64_t popped = 0;
  WCQ_CHECK(Access::finish_pop(q, stalled, &popped),
            "%s: stalled dequeue failed", name);
  WCQ_CHECK(popped == 888, "%s: stalled dequeue got %llu want 888", name,
            (unsigned long long)popped);

  WCQ_CHECK(Access::helps(helper) >= 2,
            "%s: helps counter is %llu, want >= 2", name,
            (unsigned long long)Access::helps(helper));
  std::printf("  ok helping           %s\n", name);
}

// Regression for the help-round self-skip bug: when the round-robin
// cursor lands on the helper's own record, the round must advance to a
// real peer instead of being forfeited. Deterministic setup: the
// helper owns slot 0, so its first help check (cursor 0) hits itself;
// before the fix that returned without helping and — with exactly one
// other thread — every other round was wasted the same way.
template <bool Portable>
void test_help_round_not_wasted_on_self(const char* name) {
  using Access = wcq::WcqTestAccess<Portable>;
  using Queue = wcq::WcqQueueT<Portable>;
  Queue q(wcq::options{}.order(4).max_threads(4).help_delay(1));
  auto helper = q.get_handle();   // slot 0: cursor 0 lands on itself
  auto stalled = q.get_handle();  // slot 1: the peer needing help

  WCQ_CHECK(Access::publish_stalled_push(q, stalled, 321),
            "%s: fresh queue had no free index", name);
  std::uint64_t v = 0;
  // One single own-operation must spend its help round on the peer.
  // The help lands before the pop itself, so the pop may already
  // consume the helped value.
  const bool got321 = q.try_pop(&v, helper) && v == 321;
  WCQ_CHECK(Access::done_ok(q, stalled),
            "%s: help round landing on self was forfeited", name);
  WCQ_CHECK(Access::finish_push(q, stalled), "%s: self-skip help failed",
            name);
  if (!got321) {
    WCQ_CHECK(q.try_pop(&v, helper) && v == 321,
              "%s: self-skip helped value lost", name);
  }
  std::printf("  ok helping_self_skip %s\n", name);
}

}  // namespace

int main() {
  test_helper_completes_stalled_ops<false>("wcq");
  test_helper_completes_stalled_ops<true>("wcq-portable");
  test_help_round_not_wasted_on_self<false>("wcq");
  test_help_round_not_wasted_on_self<true>("wcq-portable");
  return 0;
}
