// Deterministic coverage for wCQ's helper-completion path: the owner
// publishes a request and then "stalls" (never self-claims, via the
// WcqTestAccess backdoor); a peer doing its own operations must pick
// the request up through help_threads and finalize it. On real
// schedules this window is nanoseconds wide, so timing alone cannot
// exercise it — this is the wait-freedom scenario made reproducible.
#include "queue_test_common.hpp"
#include "wcq/wcq.hpp"

namespace wcq {

template <bool Portable>
struct WcqTestAccess {
  using Queue = WcqQueueT<Portable>;
  using Handle = typename Queue::Handle;

  static void publish_enqueue(Handle& h, std::uint64_t v) {
    h.rec_->arg.store(v, std::memory_order_relaxed);
    h.rec_->state.store(Queue::kPendingEnq, std::memory_order_release);
  }
  static void publish_dequeue(Handle& h) {
    h.rec_->state.store(Queue::kPendingDeq, std::memory_order_release);
  }
  static bool done(Handle& h) {
    const std::uint64_t s = h.rec_->state.load(std::memory_order_acquire);
    return s == Queue::kDoneOk || s == Queue::kDoneFail;
  }
  static bool done_ok(Handle& h) {
    return h.rec_->state.load(std::memory_order_acquire) == Queue::kDoneOk;
  }
  static std::uint64_t result(Handle& h) {
    return h.rec_->result.load(std::memory_order_acquire);
  }
  static void reset(Handle& h) {
    h.rec_->state.store(Queue::kIdle, std::memory_order_release);
  }
  static std::uint64_t helps(const Queue& q) { return q.stats().helps; }
};

}  // namespace wcq

namespace {

template <bool Portable>
void test_helper_completes_stalled_ops(const char* name) {
  using Access = wcq::WcqTestAccess<Portable>;
  using Queue = wcq::WcqQueueT<Portable>;
  typename Queue::Config cfg;
  cfg.order = 4;
  cfg.max_threads = 4;
  cfg.help_delay = 1;  // helper checks a peer on every own op
  Queue q(cfg);
  auto stalled = q.make_handle();
  auto helper = q.make_handle();

  // --- stalled enqueue(777): the helper's own (empty) dequeues must
  // complete it, after which the value is really in the queue.
  Access::publish_enqueue(stalled, 777);
  std::uint64_t v = 0;
  bool got777 = false;
  int spins = 0;
  while (!Access::done(stalled)) {
    // The loop dequeue may consume 777 the moment the help lands.
    if (q.dequeue(&v, helper) && v == 777) got777 = true;
    WCQ_CHECK(++spins < 1000, "%s: helper never completed the enqueue",
              name);
  }
  WCQ_CHECK(Access::done_ok(stalled), "%s: stalled enqueue failed", name);
  Access::reset(stalled);
  if (!got777) {
    WCQ_CHECK(q.dequeue(&v, helper) && v == 777,
              "%s: helped enqueue value lost (got %llu)", name,
              (unsigned long long)v);
  }

  // --- stalled dequeue: put one value in, publish the request, and
  // drive the helper with enqueue/dequeue churn until it finalizes.
  WCQ_CHECK(q.enqueue(888, helper), "%s: seed enqueue refused", name);
  Access::publish_dequeue(stalled);
  spins = 0;
  while (!Access::done(stalled)) {
    // Churn on a disjoint value; the helper must hand 888 (FIFO head)
    // to the stalled requester, not consume it itself.
    (void)q.enqueue(5, helper);
    (void)q.dequeue(&v, helper);
    WCQ_CHECK(++spins < 1000, "%s: helper never completed the dequeue",
              name);
  }
  WCQ_CHECK(Access::done_ok(stalled), "%s: stalled dequeue failed", name);
  WCQ_CHECK(Access::result(stalled) == 888,
            "%s: stalled dequeue got %llu want 888", name,
            (unsigned long long)Access::result(stalled));
  Access::reset(stalled);

  WCQ_CHECK(Access::helps(q) >= 2, "%s: helps counter is %llu, want >= 2",
            name, (unsigned long long)Access::helps(q));
  std::printf("  ok helping           %s\n", name);
}

}  // namespace

int main() {
  test_helper_completes_stalled_ops<false>("wcq");
  test_helper_completes_stalled_ops<true>("wcq-portable");
  return 0;
}
