// MPMC no-loss/no-duplication under producer/consumer contention, the
// tier-1 correctness gate (also the TSan target in CI). Sizes shrink
// automatically on small machines; override with WCQ_TEST_OPS.
#include "queue_test_common.hpp"

int main(int argc, char** argv) {
  using namespace wcq::test;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned side = hw >= 8 ? 4 : 2;  // producers and consumers each
  const std::uint64_t per_producer = env_ops(hw >= 4 ? 20000 : 8000);
  auto fn = [&]<typename A>(const char* tag) {
    // Sharded entries promise per-shard FIFO only (cross-shard order
    // is relaxed by contract), so the per-producer order assertion is
    // skipped for them; no-loss/no-duplication still applies in full.
    const bool check_order = std::strncmp(tag, "sharded", 7) != 0;
    test_mpmc<A>(tag, side, side, per_producer, check_order);
    // Asymmetric shapes stress full-ring (many producers) and
    // empty-queue (many consumers) edges.
    test_mpmc<A>(tag, 2 * side, 1, per_producer / 2, check_order);
    test_mpmc<A>(tag, 1, 2 * side, per_producer / 2, check_order);
  };
  return for_selected_queues(argc, argv, fn);
}
