// Slow-path battery: every test here forces traffic through the CAS2
// note protocol, either with patience=1 (one fast attempt, then
// publish a request) or — when built with -DWCQ_ALL_SLOW, as the
// *_all_slow ctest variant does — with the fast path compiled out
// entirely, so literally every operation runs claim/commit/finalize.
//
// Covered: single-thread FIFO and empty/full through the slow path,
// MPMC no-loss/no-duplication with per-producer order, and the
// acceptance scenario of the cooperative redesign: two helpers driving
// the SAME pending request concurrently (no single-executor
// serialization), with the operation still completing exactly once.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "queue_test_common.hpp"
#include "wcq/wcq.hpp"

namespace {

using namespace wcq;

// patience(1,1): one fast attempt before publishing a request. Under
// WCQ_ALL_SLOW the option is moot (there is no fast path), but keeping
// it makes the two build variants run identical configurations.
options slow_opts(unsigned order, unsigned max_threads) {
  return options{}
      .order(order)
      .max_threads(max_threads)
      .patience(1, 1)
      .help_delay(1);
}

template <bool Portable>
void test_slow_fifo(const char* name) {
  WcqQueueT<Portable> q(slow_opts(12, 2));  // capacity 4096 > n
  auto h = q.get_handle();
  const std::uint64_t n = 3000;
  for (std::uint64_t i = 0; i < n; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: slow push %llu refused", name,
              (unsigned long long)i);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    WCQ_CHECK(q.try_pop(&v, h), "%s: slow pop %llu empty", name,
              (unsigned long long)i);
    WCQ_CHECK(v == i, "%s: got %llu want %llu (FIFO violated)", name,
              (unsigned long long)v, (unsigned long long)i);
  }
  std::uint64_t v = 0;
  WCQ_CHECK(!q.try_pop(&v, h), "%s: drained queue not empty", name);
  std::printf("  ok slow_fifo         %s\n", name);
}

template <bool Portable>
void test_slow_empty_full(const char* name) {
  const std::uint64_t cap = 32;
  WcqQueueT<Portable> q(slow_opts(5, 2));
  auto h = q.get_handle();
  std::uint64_t v = 0;
  for (int i = 0; i < 50; ++i) {
    WCQ_CHECK(!q.try_pop(&v, h), "%s: fresh queue not empty", name);
  }
  for (std::uint64_t i = 0; i < cap; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: fill push %llu refused", name,
              (unsigned long long)i);
  }
  for (int i = 0; i < 50; ++i) {
    WCQ_CHECK(!q.try_push(999, h), "%s: push into full ring succeeded",
              name);
  }
  for (std::uint64_t i = 0; i < cap; ++i) {
    WCQ_CHECK(q.try_pop(&v, h) && v == i, "%s: drain %llu broken", name,
              (unsigned long long)i);
  }
  // Reusable across many wraps after full/empty episodes.
  for (std::uint64_t i = 0; i < cap * 8; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: wrap push refused", name);
    WCQ_CHECK(q.try_pop(&v, h) && v == i, "%s: wrap roundtrip broken",
              name);
  }
  std::printf("  ok slow_empty_full   %s\n", name);
}

template <bool Portable>
void test_slow_mpmc(const char* name, unsigned producers,
                    unsigned consumers) {
  const std::uint64_t per_producer = test::env_ops(5000);
  WcqQueueT<Portable> q(slow_opts(8, producers + consumers + 2));

  const std::uint64_t total = per_producer * producers;
  std::vector<std::atomic<std::uint32_t>> seen(total);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(producers + consumers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.get_handle();
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t v = p * per_producer + i;
        while (!q.try_push(v, h)) std::this_thread::yield();
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      auto h = q.get_handle();
      std::vector<std::uint64_t> last(producers, 0);
      std::vector<bool> any(producers, false);
      while (consumed.load(std::memory_order_acquire) < total) {
        std::uint64_t v = 0;
        if (!q.try_pop(&v, h)) {
          std::this_thread::yield();
          continue;
        }
        WCQ_CHECK(v < total, "%s: out-of-range value %llu", name,
                  (unsigned long long)v);
        seen[v].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_acq_rel);
        const std::uint64_t p = v / per_producer;
        const std::uint64_t seq = v % per_producer;
        if (any[p] && seq <= last[p]) {
          order_ok.store(false, std::memory_order_relaxed);
        }
        last[p] = seq;
        any[p] = true;
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::uint64_t v = 0; v < total; ++v) {
    const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
    WCQ_CHECK(count == 1, "%s: value %llu seen %u times (lost/duplicated)",
              name, (unsigned long long)v, count);
  }
  WCQ_CHECK(order_ok.load(), "%s: per-producer FIFO order violated", name);

  // Under ALL_SLOW every operation is structurally a slow op, so the
  // counter check is deterministic. With patience=1 it depends on real
  // CAS contention, which a single-core scheduler may never produce —
  // there the deterministic slow-path coverage comes from the
  // stalled-owner tests below, and we only report the observed rate.
  const WcqStats st = q.stats();
#if defined(WCQ_ALL_SLOW)
  WCQ_CHECK(st.slow_enqueues + st.slow_dequeues > 0,
            "%s: all-slow build never took the slow path", name);
#endif
  std::printf("  ok slow_mpmc %ux%u    %s (%llu slow ops)\n", producers,
              consumers, name,
              (unsigned long long)(st.slow_enqueues + st.slow_dequeues));
}

// Regression for slow-path threshold accounting. Threshold decrements
// must be tied to unique global Head tickets; with a per-request
// decrement stream, k stale-positioned slow dequeues account the same
// spent position up to k times, drive threshold below zero while a
// value is still parked, and return a definitive — and wrong —
// "empty". This builds that scenario deterministically: 12 values in a
// capacity-16 ring (threshold_init 47), then 11 pop requests all
// published before any is driven, so every request's scan starts at
// the same Head snapshot. Completing them one by one makes request i
// rescan the i-1 positions its predecessors consumed: per-request
// accounting racks up 0+1+...+10 = 55 spurious decrements and request
// 11 finalizes empty with two values still parked; head-ticket
// accounting never decrements for a position it did not take from the
// global Head stream, so all 11 pops must succeed and the 12th value
// must still be there.
template <bool Portable>
void test_no_premature_empty(const char* name) {
  using Access = WcqTestAccess<Portable>;
  constexpr unsigned kPops = 11;
  constexpr unsigned kValues = kPops + 1;
  WcqQueueT<Portable> q(slow_opts(4, kPops + 1));  // capacity 16
  auto seed = q.get_handle();

  std::vector<typename WcqQueueT<Portable>::Handle> stalled;
  stalled.reserve(kPops);
  for (unsigned i = 0; i < kPops; ++i) stalled.push_back(q.get_handle());

  for (unsigned i = 0; i < kValues; ++i) {
    WCQ_CHECK(q.try_push(100 + i, seed), "%s: fill push %u refused", name, i);
  }
  // All requests snapshot the same scan start before any consume.
  for (unsigned i = 0; i < kPops; ++i) {
    Access::publish_stalled_pop(q, stalled[i]);
  }
  for (unsigned i = 0; i < kPops; ++i) {
    Access::help(q, stalled[i]);  // drives request i to a terminal state
    WCQ_CHECK(Access::done_ok(q, stalled[i]),
              "%s: pop %u finalized empty with values parked "
              "(threshold over-drained)",
              name, i);
    std::uint64_t v = 0;
    WCQ_CHECK(Access::finish_pop(q, stalled[i], &v) && v == 100 + i,
              "%s: pop %u got %llu want %u", name, i, (unsigned long long)v,
              100 + i);
  }
  std::uint64_t v = 0;
  WCQ_CHECK(q.try_pop(&v, seed) && v == 100 + kPops,
            "%s: last parked value lost", name);
  WCQ_CHECK(!q.try_pop(&v, seed), "%s: drained queue not empty", name);
  std::printf("  ok slow_no_prem_empty %s (%u stale-pos pops)\n", name,
              kPops);
}

// The acceptance scenario of the cooperative redesign: two helpers
// drive the SAME pending request at the same time. The old delegation
// slow path serialized this on a claim CAS — exactly one thread could
// execute a request, the other was forced to walk away. Here
// help_request never takes ownership: both threads step the shared
// ctl/note state machine, so both engage the same request concurrently
// (each observes it pending and enters help_slow), and the commit
// still happens exactly once. Repeated under a start barrier so both
// sides demonstrably engage many times over the run.
template <bool Portable>
void test_two_helpers_one_request(const char* name) {
  using Access = WcqTestAccess<Portable>;
  constexpr int kRounds = 200;
  WcqQueueT<Portable> q(slow_opts(6, 4));
  auto owner = q.get_handle();
  auto h1 = q.get_handle();
  auto h2 = q.get_handle();

  std::atomic<int> round_gate{0};
  std::atomic<bool> run{true};
  std::atomic<std::uint64_t> engaged1{0};
  std::atomic<std::uint64_t> engaged2{0};

  auto helper_loop = [&](std::atomic<std::uint64_t>& engaged, int id) {
    int round = 0;
    while (run.load(std::memory_order_acquire)) {
      // Wait for this round's request to be published.
      if (round_gate.load(std::memory_order_acquire) <= round) continue;
      ++round;
      // Drive the owner's pending request; help() returns true iff it
      // observed the request still in flight and stepped it.
      if (Access::help(q, owner)) {
        engaged.fetch_add(1, std::memory_order_relaxed);
      }
      (void)id;
    }
  };
  std::thread t1(helper_loop, std::ref(engaged1), 1);
  std::thread t2(helper_loop, std::ref(engaged2), 2);

  auto seed = q.get_handle();
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t want = 1000 + round;
    WCQ_CHECK(q.try_push(want, seed), "%s: seed push refused", name);
    Access::publish_stalled_pop(q, owner);
    round_gate.fetch_add(1, std::memory_order_acq_rel);  // release helpers
    // The owner stays stalled; only the two helpers can finish this.
    int spins = 0;
    while (!Access::done_ok(q, owner)) {
      std::this_thread::yield();
      WCQ_CHECK(++spins < 1'000'000,
                "%s: helpers never completed round %d", name, round);
    }
    std::uint64_t got = 0;
    WCQ_CHECK(Access::finish_pop(q, owner, &got),
              "%s: helped pop failed in round %d", name, round);
    WCQ_CHECK(got == want, "%s: round %d got %llu want %llu", name, round,
              (unsigned long long)got, (unsigned long long)want);
    std::uint64_t residue = 0;
    WCQ_CHECK(!q.try_pop(&residue, seed),
              "%s: round %d delivered %llu twice", name, round,
              (unsigned long long)residue);
  }
  run.store(false, std::memory_order_release);
  t1.join();
  t2.join();

  // Both helpers must have engaged pending requests across the run; a
  // serializing (single-executor) slow path starves one side.
  WCQ_CHECK(engaged1.load() > 0 && engaged2.load() > 0,
            "%s: helpers did not both make progress (%llu / %llu)", name,
            (unsigned long long)engaged1.load(),
            (unsigned long long)engaged2.load());
  std::printf("  ok slow_two_helpers  %s (%llu + %llu engagements)\n", name,
              (unsigned long long)engaged1.load(),
              (unsigned long long)engaged2.load());
}

}  // namespace

int main() {
  test_slow_fifo<false>("wcq");
  test_slow_fifo<true>("wcq-portable");
  test_slow_empty_full<false>("wcq");
  test_slow_empty_full<true>("wcq-portable");
  test_slow_mpmc<false>("wcq", 3, 3);
  test_slow_mpmc<true>("wcq-portable", 2, 2);
  test_no_premature_empty<false>("wcq");
  test_no_premature_empty<true>("wcq-portable");
  test_two_helpers_one_request<false>("wcq");
  test_two_helpers_one_request<true>("wcq-portable");
  return 0;
}
