// Typed wcq::queue<T> facade coverage: inline slot_codec for small
// trivially copyable T (must be bit-exact and allocation-free), the
// boxed pointer-indirection codec for anything larger (no leaks on
// failed pushes or on teardown with values still queued), and the
// concept surface working over a non-default backend.
#include <cstdint>
#include <string>

#include "queue_test_common.hpp"
#include "wcq/concepts.hpp"
#include "wcq/faa_queue.hpp"
#include "wcq/queue.hpp"
#include "wcq/scq.hpp"

namespace {

using namespace wcq;

struct SmallPod {
  std::int32_t x;
  std::int16_t y;
};
static_assert(fits_in_slot_v<SmallPod>);
static_assert(!slot_codec<SmallPod>::kBoxed);
static_assert(fits_in_slot_v<std::uint64_t>);
static_assert(!fits_in_slot_v<std::string>);
static_assert(slot_codec<std::string>::kBoxed);

struct BigPod {
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(slot_codec<BigPod>::kBoxed);

static_assert(concepts::Queue<queue<SmallPod>>);
static_assert(concepts::Queue<queue<std::string>>);
static_assert(concepts::Queue<queue<std::uint64_t, ScqQueue>>);

void test_inline_codec_roundtrip() {
  queue<SmallPod> q(options{}.order(6).max_threads(2));
  auto h = q.get_handle();
  // Inline codec stays inline: after construction, roundtrips must
  // never touch the allocator.
  const std::uint64_t allocs_baseline = mem::stats().total_allocs;
  for (int i = 0; i < 200; ++i) {
    WCQ_CHECK(q.try_push(SmallPod{i, static_cast<std::int16_t>(-i)}, h),
              "inline push %d refused", i);
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && v->x == i && v->y == -i, "inline roundtrip %d corrupted",
              i);
  }
  WCQ_CHECK(mem::stats().total_allocs == allocs_baseline,
            "inline codec allocated during roundtrips");
  std::printf("  ok typed_inline\n");
}

void test_boxed_codec_roundtrip() {
  queue<std::string> q(options{}.order(4).max_threads(2));
  auto h = q.get_handle();
  const std::string long_str(100, 'x');  // defeat SSO: heap-backed
  WCQ_CHECK(q.try_push(long_str + "1", h), "boxed push refused");
  WCQ_CHECK(q.try_push(long_str + "2", h), "boxed push refused");
  auto v1 = q.try_pop(h);
  auto v2 = q.try_pop(h);
  WCQ_CHECK(v1 && *v1 == long_str + "1", "boxed FIFO head corrupted");
  WCQ_CHECK(v2 && *v2 == long_str + "2", "boxed FIFO second corrupted");
  WCQ_CHECK(!q.try_pop(h).has_value(), "boxed queue should be empty");
  std::printf("  ok typed_boxed\n");
}

void test_boxed_no_leak_on_failed_push() {
  const std::uint64_t live_before = mem::stats().live_bytes;
  {
    queue<BigPod> q(options{}.order(2).max_threads(2));  // capacity 4
    auto h = q.get_handle();
    std::uint64_t pushed = 0;
    while (q.try_push(BigPod{pushed, pushed}, h)) ++pushed;
    WCQ_CHECK(pushed == q.capacity(), "bounded facade accepted %llu of %llu",
              (unsigned long long)pushed, (unsigned long long)q.capacity());
    const std::uint64_t live_full = mem::stats().live_bytes;
    // Refused pushes must reclaim their box immediately.
    for (int i = 0; i < 100; ++i) {
      WCQ_CHECK(!q.try_push(BigPod{9, 9}, h), "push into full facade");
    }
    WCQ_CHECK(mem::stats().live_bytes == live_full,
              "failed boxed pushes leaked %llu bytes",
              (unsigned long long)(mem::stats().live_bytes - live_full));
    for (std::uint64_t i = 0; i < pushed; ++i) {
      const auto v = q.try_pop(h);
      WCQ_CHECK(v && v->a == i, "boxed drain %llu corrupted",
                (unsigned long long)i);
    }
  }
  WCQ_CHECK(mem::stats().live_bytes == live_before,
            "boxed facade leaked %llu bytes across its lifetime",
            (unsigned long long)(mem::stats().live_bytes - live_before));
  std::printf("  ok typed_boxed_full\n");
}

void test_boxed_teardown_drains() {
  const std::uint64_t live_before = mem::stats().live_bytes;
  {
    queue<std::string> q(options{}.order(4).max_threads(2));
    auto h = q.get_handle();
    for (int i = 0; i < 10; ++i) {
      WCQ_CHECK(q.try_push(std::string(64, 'a' + i), h),
                "teardown seed push %d refused", i);
    }
    // Queue destroyed with 10 boxed strings still inside.
  }
  WCQ_CHECK(mem::stats().live_bytes == live_before,
            "teardown leaked %llu bytes of queued boxed values",
            (unsigned long long)(mem::stats().live_bytes - live_before));
  std::printf("  ok typed_teardown\n");
}

// FAA reserves the top two slot patterns as protocol sentinels; an
// inline-encoded value colliding with them must be refused (push
// returns false), never silently lost or able to corrupt the cell.
void test_faa_reserved_values_refused() {
  queue<std::int64_t, FaaQueue> q(options{});
  auto h = q.get_handle();
  WCQ_CHECK(!q.try_push(std::int64_t{-1}, h),
            "FAA accepted its EMPTY sentinel bit pattern");
  WCQ_CHECK(!q.try_push(std::int64_t{-2}, h),
            "FAA accepted its TAKEN sentinel bit pattern");
  WCQ_CHECK(!q.try_pop(h).has_value(),
            "refused sentinel push left a phantom element");
  WCQ_CHECK(q.try_push(std::int64_t{-3}, h),
            "first storable value refused");
  const auto v = q.try_pop(h);
  WCQ_CHECK(v && *v == -3, "storable negative value corrupted");
  // Boxed codecs are the escape hatch: pointers never collide with
  // the sentinels, so the full value space round-trips.
  queue<BigPod, FaaQueue> bq(options{});
  auto bh = bq.get_handle();
  const std::uint64_t all_ones = ~std::uint64_t{0};
  WCQ_CHECK(bq.try_push(BigPod{all_ones, all_ones}, bh),
            "boxed push over FAA refused");
  const auto bv = bq.try_pop(bh);
  WCQ_CHECK(bv && bv->a == all_ones && bv->b == all_ones,
            "boxed all-ones value corrupted over FAA");
  std::printf("  ok typed_faa_reserved\n");
}

void test_non_default_backend() {
  queue<SmallPod, ScqQueue> q(options{}.order(6));
  auto h = q.get_handle();
  for (int i = 0; i < 50; ++i) {
    WCQ_CHECK(q.try_push(SmallPod{i, 7}, h), "scq-backed push %d refused",
              i);
  }
  for (int i = 0; i < 50; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && v->x == i, "scq-backed FIFO violated at %d", i);
  }
  std::printf("  ok typed_scq_backend\n");
}

}  // namespace

int main() {
  test_inline_codec_roundtrip();
  test_boxed_codec_roundtrip();
  test_boxed_no_leak_on_failed_push();
  test_boxed_teardown_drains();
  test_faa_reserved_values_refused();
  test_non_default_backend();
  return 0;
}
