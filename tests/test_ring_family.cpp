// Differential fuzzing across the SCQ ring family. All five queues —
// SCQ, NCQ, CCQ, LSCQ and wCQ — now sit on the same layered ring
// kernel (ring_math / ring_entry / ring_policy, plus ring_noted for
// wCQ), so they must be observationally identical FIFO queues; only
// their progress guarantees and boundedness differ. Three checks:
//
//  1. Serial differential vs a std::deque model on a randomized op
//     tape with fill/drain regime waves: every push accept/refuse and
//     every pop value must match the model exactly. The four bounded
//     members run a small ring (order 4, capacity 16) so the tape
//     wraps the cycle counter many times and hits full episodes;
//     LSCQ runs the unbounded variant (pushes may never refuse) with
//     order-4 segments so the tape crosses segment boundaries.
//  2. Tape agreement: one no-refusal tape (pending kept inside
//     (0, capacity) by construction) replayed on all five queues must
//     yield byte-identical pop traces.
//  3. Concurrent fuzz per queue: threads each run a random push/pop
//     mix over one queue; accounting must be exact (every accepted
//     push popped exactly once, nothing invented) and each popping
//     thread must see every pusher's values in monotone order.
#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "queue_test_common.hpp"
#include "wcq/queue.hpp"
#include "wcq/wcq.hpp"

namespace {

using namespace wcq;

// Deterministic splitmix64: the tape must be identical across queues
// and across runs (failures reproduce).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// ---- 1. serial differential vs std::deque ----

template <concepts::Queue Q>
void diff_model(const char* name, unsigned order, bool bounded,
                std::uint64_t ops) {
  Q q(options{}.max_threads(2).order(order));
  auto h = q.get_handle();
  const std::uint64_t cap = std::uint64_t{1} << order;

  std::deque<std::uint64_t> model;
  Rng rng{0x5ca1ab1e0ddba11ull};
  std::uint64_t next_value = 1;

  for (std::uint64_t i = 0; i < ops; ++i) {
    // Regime waves: 256 push-heavy ops, then 256 pop-heavy, so the
    // tape holds the ring near-full and near-empty in turn.
    const bool push_heavy = ((i >> 8) & 1) == 0;
    const unsigned push_pct = push_heavy ? 75 : 25;
    if (rng.next() % 100 < push_pct) {
      const std::uint64_t v = next_value++;
      const bool ok = q.try_push(v, h);
      const bool model_ok = !bounded || model.size() < cap;
      WCQ_CHECK(ok == model_ok,
                "%s: op %llu push(%llu) %s but model (size %zu/%llu) says %s",
                name, (unsigned long long)i, (unsigned long long)v,
                ok ? "accepted" : "refused", model.size(),
                (unsigned long long)cap, model_ok ? "accept" : "refuse");
      if (ok) model.push_back(v);
    } else {
      const auto v = q.try_pop(h);
      if (model.empty()) {
        WCQ_CHECK(!v.has_value(), "%s: op %llu popped %llu from empty model",
                  name, (unsigned long long)i, (unsigned long long)*v);
      } else {
        WCQ_CHECK(v.has_value(), "%s: op %llu empty but model holds %zu",
                  name, (unsigned long long)i, model.size());
        WCQ_CHECK(*v == model.front(), "%s: op %llu popped %llu want %llu",
                  name, (unsigned long long)i, (unsigned long long)*v,
                  (unsigned long long)model.front());
        model.pop_front();
      }
    }
  }
  // Drain: the survivors must come out in model order, then empty.
  while (!model.empty()) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && *v == model.front(), "%s: drain diverged from model",
              name);
    model.pop_front();
  }
  WCQ_CHECK(!q.try_pop(h).has_value(), "%s: queue outlived its model", name);
  std::printf("  ok diff_model        %s\n", name);
}

// ---- 2. one tape, five queues, identical traces ----

struct TapeOp {
  bool push;
};

template <concepts::Queue Q>
std::vector<std::uint64_t> replay(const char* name, unsigned order,
                                  const std::vector<TapeOp>& tape) {
  Q q(options{}.max_threads(2).order(order));
  auto h = q.get_handle();
  std::vector<std::uint64_t> popped;
  std::uint64_t next_value = 1;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (tape[i].push) {
      WCQ_CHECK(q.try_push(next_value, h),
                "%s: no-refusal tape push %llu refused at op %zu", name,
                (unsigned long long)next_value, i);
      ++next_value;
    } else {
      const auto v = q.try_pop(h);
      WCQ_CHECK(v.has_value(), "%s: no-refusal tape pop empty at op %zu",
                name, i);
      popped.push_back(*v);
    }
  }
  return popped;
}

void test_tape_agreement() {
  // Pending stays inside (0, cap): pushes never refuse on a
  // capacity-16 ring and pops never hit empty, so every queue must
  // produce the same trace. Values still wrap the order-4 cycle
  // counter hundreds of times and cross several LSCQ segments.
  constexpr unsigned kOrder = 4;
  const std::uint64_t cap = std::uint64_t{1} << kOrder;
  const std::uint64_t ops = test::env_ops(20000);
  Rng rng{0xfee1900dull};
  std::vector<TapeOp> tape;
  tape.reserve(ops);
  std::uint64_t pending = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    bool push = rng.next() % 2 == 0;
    if (pending == 0) push = true;
    if (pending == cap) push = false;
    tape.push_back(TapeOp{push});
    pending = push ? pending + 1 : pending - 1;
  }

  const auto scq = replay<harness::ScqAdapter>("scq", kOrder, tape);
  const auto ncq = replay<harness::NcqAdapter>("ncq", kOrder, tape);
  const auto ccq = replay<harness::CcqAdapter>("ccq", kOrder, tape);
  const auto lscq = replay<harness::LscqAdapter>("lscq", kOrder, tape);
  const auto wcq_t = replay<harness::WcqAdapter>("wcq", kOrder, tape);

  WCQ_CHECK(ncq == scq, "ncq trace diverged from scq on a shared tape");
  WCQ_CHECK(ccq == scq, "ccq trace diverged from scq on a shared tape");
  WCQ_CHECK(lscq == scq, "lscq trace diverged from scq on a shared tape");
  WCQ_CHECK(wcq_t == scq, "wcq trace diverged from scq on a shared tape");
  std::printf("  ok tape_agreement    (%zu ops, %zu pops, 5 queues)\n",
              tape.size(), scq.size());
}

// ---- 3. concurrent randomized push/pop mix ----

template <concepts::Queue Q>
void fuzz_concurrent(const char* name, unsigned order) {
  constexpr unsigned kThreads = 4;
  const std::uint64_t per_thread = test::env_ops(12000);
  const std::uint64_t value_space = kThreads * per_thread;

  Q q(options{}.max_threads(kThreads + 1).order(order));
  std::vector<std::atomic<std::uint32_t>> seen(value_space);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::vector<std::uint64_t> pushed(kThreads, 0);
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto h = q.get_handle();
      Rng rng{0xdecafbad + t};
      std::uint64_t seq = 0;
      std::vector<std::uint64_t> last(kThreads, 0);
      std::vector<bool> any(kThreads, false);
      for (std::uint64_t i = 0; i < per_thread * 2; ++i) {
        if (rng.next() % 2 == 0 && seq < per_thread) {
          // A refused push (bounded queue momentarily full) is simply
          // not retried; accounting only covers accepted pushes.
          if (q.try_push(t * per_thread + seq, h)) ++seq;
        } else if (const auto v = q.try_pop(h)) {
          WCQ_CHECK(*v < value_space, "%s: invented value %llu", name,
                    (unsigned long long)*v);
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t p = *v / per_thread;
          const std::uint64_t s = *v % per_thread;
          if (any[p] && s <= last[p]) {
            order_ok.store(false, std::memory_order_relaxed);
          }
          last[p] = s;
          any[p] = true;
        }
      }
      pushed[t] = seq;
    });
  }
  for (auto& th : threads) th.join();

  // Drain the survivors on the main thread, then audit: every value a
  // thread reports as pushed must have been seen exactly once, and no
  // unpushed value may appear at all.
  {
    auto h = q.get_handle();
    while (const auto v = q.try_pop(h)) {
      WCQ_CHECK(*v < value_space, "%s: invented value %llu in drain", name,
                (unsigned long long)*v);
      seen[*v].fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::uint64_t total_pushed = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    total_pushed += pushed[t];
    for (std::uint64_t s = 0; s < per_thread; ++s) {
      const std::uint64_t v = t * per_thread + s;
      const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
      const std::uint32_t want = s < pushed[t] ? 1 : 0;
      WCQ_CHECK(count == want, "%s: value %llu seen %u times, want %u",
                name, (unsigned long long)v, count, want);
    }
  }
  WCQ_CHECK(order_ok.load(), "%s: per-producer FIFO order violated", name);
  std::printf("  ok fuzz_concurrent   %s (%llu of %llu pushes accepted)\n",
              name, (unsigned long long)total_pushed,
              (unsigned long long)value_space);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ops = test::env_ops(60000);
  // Serial model differential: bounded members on a tiny ring, LSCQ
  // unbounded across segments.
  if (test::selected(argc, argv, "scq")) {
    diff_model<harness::ScqAdapter>("scq", 4, true, ops);
    fuzz_concurrent<harness::ScqAdapter>("scq", 6);
  }
  if (test::selected(argc, argv, "ncq")) {
    diff_model<harness::NcqAdapter>("ncq", 4, true, ops);
    fuzz_concurrent<harness::NcqAdapter>("ncq", 6);
  }
  if (test::selected(argc, argv, "ccq")) {
    diff_model<harness::CcqAdapter>("ccq", 4, true, ops);
    fuzz_concurrent<harness::CcqAdapter>("ccq", 6);
  }
  if (test::selected(argc, argv, "wcq")) {
    diff_model<harness::WcqAdapter>("wcq", 4, true, ops);
    fuzz_concurrent<harness::WcqAdapter>("wcq", 6);
  }
  if (test::selected(argc, argv, "lscq")) {
    diff_model<harness::LscqAdapter>("lscq", 4, false, ops);
    fuzz_concurrent<harness::LscqAdapter>("lscq", 4);
  }
  if (argc < 2 || test::selected(argc, argv, "family")) {
    test_tape_agreement();
  }
  return 0;
}
