// Shared correctness checks, templated over wcq::concepts::Queue so
// every lineup entry faces the same battery. Each test binary selects
// checks; a non-zero exit (or abort) fails ctest.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/queue_adapters.hpp"
#include "wcq/concepts.hpp"
#include "wcq/options.hpp"

namespace wcq::test {

#define WCQ_CHECK(cond, ...)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s — ", __FILE__, __LINE__,     \
                   #cond);                                              \
      std::fprintf(stderr, __VA_ARGS__);                                \
      std::fprintf(stderr, "\n");                                       \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

inline std::uint64_t env_ops(std::uint64_t dflt) {
  if (const char* v = std::getenv("WCQ_TEST_OPS"); v && *v) {
    return std::strtoull(v, nullptr, 10);
  }
  return dflt;
}

// Single-thread FIFO: dequeue order must equal enqueue order.
template <concepts::Queue Q>
void test_fifo_order(const char* name) {
  // capacity 32768 > n below
  Q q(options{}.max_threads(2).order(15));
  auto h = q.get_handle();
  const std::uint64_t n = 10000;
  for (std::uint64_t i = 0; i < n; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: enqueue %llu refused", name,
              (unsigned long long)i);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v.has_value(), "%s: dequeue %llu empty", name,
              (unsigned long long)i);
    WCQ_CHECK(*v == i, "%s: got %llu want %llu (FIFO violated)", name,
              (unsigned long long)*v, (unsigned long long)i);
  }
  WCQ_CHECK(!q.try_pop(h).has_value(), "%s: queue should be drained", name);
  std::printf("  ok fifo_order        %s\n", name);
}

// Dequeue on a fresh queue and on a drained queue must report empty.
template <concepts::Queue Q>
void test_empty_dequeue(const char* name) {
  Q q(options{}.max_threads(2).order(8));
  auto h = q.get_handle();
  for (int i = 0; i < 100; ++i) {
    WCQ_CHECK(!q.try_pop(h).has_value(), "%s: fresh queue not empty", name);
  }
  WCQ_CHECK(q.try_push(42, h), "%s: enqueue refused", name);
  const auto v = q.try_pop(h);
  WCQ_CHECK(v && *v == 42, "%s: roundtrip failed", name);
  for (int i = 0; i < 100; ++i) {
    WCQ_CHECK(!q.try_pop(h).has_value(), "%s: drained queue not empty",
              name);
  }
  std::printf("  ok empty_dequeue     %s\n", name);
}

// Bounded queues must accept exactly `capacity` items then refuse;
// after draining, the refused capacity is available again.
template <concepts::Queue Q>
void test_full_ring(const char* name) {
  const std::uint64_t cap = 64;
  Q q(options{}.max_threads(2).order(6));  // capacity 64
  auto h = q.get_handle();
  for (std::uint64_t i = 0; i < cap; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: enqueue %llu of %llu refused", name,
              (unsigned long long)i, (unsigned long long)cap);
  }
  WCQ_CHECK(!q.try_push(999, h), "%s: enqueue into full ring succeeded",
            name);
  for (std::uint64_t i = 0; i < cap; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v.has_value(), "%s: drain %llu empty", name,
              (unsigned long long)i);
    WCQ_CHECK(*v == i, "%s: drain got %llu want %llu", name,
              (unsigned long long)*v, (unsigned long long)i);
  }
  // The ring must be reusable across many wraps after a full episode.
  for (std::uint64_t i = 0; i < cap * 8; ++i) {
    WCQ_CHECK(q.try_push(i, h), "%s: wrap enqueue refused", name);
    const auto v = q.try_pop(h);
    WCQ_CHECK(v && *v == i, "%s: wrap roundtrip", name);
  }
  std::printf("  ok full_ring         %s\n", name);
}

// MPMC no-loss/no-duplication: P producers push tagged values, C
// consumers pop until everything is accounted for; every value must be
// seen exactly once and per-producer order must be monotone.
// check_order=false relaxes the per-producer order assertion for
// queues whose contract is weaker than global per-producer FIFO —
// wcq::sharded documents per-shard FIFO with relaxed cross-shard
// order, so a producer's values spread over shards may legally be
// observed out of sequence.
template <concepts::Queue Q>
void test_mpmc(const char* name, unsigned producers, unsigned consumers,
               std::uint64_t per_producer, bool check_order = true) {
  // small ring: forces full/empty interleaving
  Q q(options{}.max_threads(producers + consumers + 2).order(10));

  const std::uint64_t total = per_producer * producers;
  std::vector<std::atomic<std::uint32_t>> seen(total);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(producers + consumers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.get_handle();
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t v = p * per_producer + i;
        while (!q.try_push(v, h)) {
          std::this_thread::yield();  // full: wait for consumers
        }
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      auto h = q.get_handle();
      std::vector<std::uint64_t> last(producers, 0);
      std::vector<bool> any(producers, false);
      while (consumed.load(std::memory_order_acquire) < total) {
        const auto popped = q.try_pop(h);
        if (!popped) {
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t v = *popped;
        WCQ_CHECK(v < total, "%s: out-of-range value %llu", name,
                  (unsigned long long)v);
        seen[v].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_acq_rel);
        // Per-producer FIFO: this consumer must see each producer's
        // values in increasing sequence order.
        const std::uint64_t p = v / per_producer;
        const std::uint64_t seq = v % per_producer;
        if (any[p] && seq <= last[p]) {
          order_ok.store(false, std::memory_order_relaxed);
        }
        last[p] = seq;
        any[p] = true;
      }
    });
  }
  for (auto& t : threads) t.join();

  WCQ_CHECK(consumed.load() == total, "%s: consumed %llu of %llu", name,
            (unsigned long long)consumed.load(), (unsigned long long)total);
  for (std::uint64_t v = 0; v < total; ++v) {
    const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
    WCQ_CHECK(count == 1, "%s: value %llu seen %u times (lost/duplicated)",
              name, (unsigned long long)v, count);
  }
  WCQ_CHECK(!check_order || order_ok.load(),
            "%s: per-producer FIFO order violated", name);
  std::printf("  ok mpmc %ux%u        %s\n", producers, consumers, name);
}

// ---- queue selection shared by the test mains ----

inline bool selected(int argc, char** argv, const char* queue) {
  if (argc < 2) return true;  // no filter: run all
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], queue) == 0) return true;
  }
  return false;
}

// Invokes fn<Q>(tag) for each queue selected on the command line:
// wcq, wcq-portable, scq, ncq, ccq, lscq, faa, msq, lcrq, sharded-wcq,
// sharded-lcrq.
template <typename Fn>
int for_selected_queues(int argc, char** argv, Fn fn) {
  bool matched = false;
  if (selected(argc, argv, "wcq")) {
    fn.template operator()<harness::WcqAdapter>("wcq");
    matched = true;
  }
  if (selected(argc, argv, "wcq-portable")) {
    fn.template operator()<harness::WcqPortableAdapter>("wcq-portable");
    matched = true;
  }
  if (selected(argc, argv, "scq")) {
    fn.template operator()<harness::ScqAdapter>("scq");
    matched = true;
  }
  if (selected(argc, argv, "ncq")) {
    fn.template operator()<harness::NcqAdapter>("ncq");
    matched = true;
  }
  if (selected(argc, argv, "ccq")) {
    fn.template operator()<harness::CcqAdapter>("ccq");
    matched = true;
  }
  if (selected(argc, argv, "lscq")) {
    fn.template operator()<harness::LscqAdapter>("lscq");
    matched = true;
  }
  if (selected(argc, argv, "faa")) {
    fn.template operator()<harness::FaaAdapter>("faa");
    matched = true;
  }
  if (selected(argc, argv, "msq")) {
    fn.template operator()<harness::MsqAdapter>("msq");
    matched = true;
  }
  if (selected(argc, argv, "lcrq")) {
    fn.template operator()<harness::LcrqAdapter>("lcrq");
    matched = true;
  }
  if (selected(argc, argv, "sharded-wcq")) {
    fn.template operator()<harness::ShardedWcqAdapter>("sharded-wcq");
    matched = true;
  }
  if (selected(argc, argv, "sharded-lcrq")) {
    fn.template operator()<harness::ShardedLcrqAdapter>("sharded-lcrq");
    matched = true;
  }
  if (!matched) {
    std::fprintf(stderr,
                 "unknown queue filter; expected one of: wcq wcq-portable "
                 "scq ncq ccq lscq faa msq lcrq sharded-wcq sharded-lcrq\n");
    return 2;
  }
  return 0;
}

}  // namespace wcq::test
