// Unit checks for the latency-first harness pieces: histogram bucket
// mapping, record/merge/percentile correctness, the op sampler, the
// latency-recording driver, open-loop pacing accuracy, and the
// starvation watchdog's stall detection.
#include <atomic>
#include <chrono>
#include <thread>

#include "harness/driver.hpp"
#include "harness/latency.hpp"
#include "harness/watchdog.hpp"
#include "queue_test_common.hpp"

namespace {

using namespace wcq;
using harness::LatencyHistogram;

// Every value must land in a bucket whose bounds contain it, buckets
// must tile the axis with no gaps, and above the exact tier the bucket
// width must stay within the 1/32 relative-precision contract.
void test_bucket_mapping() {
  for (unsigned i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t low = LatencyHistogram::bucket_low(i);
    const std::uint64_t high = LatencyHistogram::bucket_high(i);
    WCQ_CHECK(LatencyHistogram::bucket_of(low) == i,
              "low of bucket %u maps to %u", i,
              LatencyHistogram::bucket_of(low));
    WCQ_CHECK(LatencyHistogram::bucket_of(high) == i,
              "high of bucket %u maps to %u", i,
              LatencyHistogram::bucket_of(high));
    if (i + 1 < LatencyHistogram::kBucketCount) {
      WCQ_CHECK(LatencyHistogram::bucket_low(i + 1) == high + 1,
                "gap after bucket %u", i);
    }
    if (low >= 2 * LatencyHistogram::kSub) {
      const std::uint64_t width = high - low + 1;
      WCQ_CHECK(width * LatencyHistogram::kSub <= low,
                "bucket %u width %llu too wide for low %llu", i,
                (unsigned long long)width, (unsigned long long)low);
    }
  }
  // Random values round-trip into containing buckets across the range.
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.next_below(60));
    const unsigned b = LatencyHistogram::bucket_of(v);
    WCQ_CHECK(LatencyHistogram::bucket_low(b) <= v &&
                  v <= LatencyHistogram::bucket_high(b),
              "value %llu outside bucket %u", (unsigned long long)v, b);
  }
  std::printf("  ok bucket_mapping\n");
}

void test_percentiles() {
  LatencyHistogram h;
  WCQ_CHECK(h.value_at_percentile(50.0) == 0, "empty histogram p50");
  // 1..1000 once each: percentiles must land within the 3.2% bucket
  // error of the exact order statistic; max/min/count/mean are exact.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  WCQ_CHECK(h.count() == 1000, "count %llu", (unsigned long long)h.count());
  WCQ_CHECK(h.max() == 1000, "max %llu", (unsigned long long)h.max());
  WCQ_CHECK(h.min() == 1, "min %llu", (unsigned long long)h.min());
  WCQ_CHECK(h.mean() > 500.0 && h.mean() < 501.0, "mean %f", h.mean());
  const auto near = [](std::uint64_t got, std::uint64_t want) {
    const double rel =
        static_cast<double>(got > want ? got - want : want - got) /
        static_cast<double>(want);
    return rel <= 0.04;  // bucket width 1/32 plus rounding
  };
  WCQ_CHECK(near(h.p50(), 500), "p50 %llu", (unsigned long long)h.p50());
  WCQ_CHECK(near(h.p99(), 990), "p99 %llu", (unsigned long long)h.p99());
  WCQ_CHECK(near(h.p999(), 999), "p99.9 %llu",
            (unsigned long long)h.p999());
  WCQ_CHECK(h.value_at_percentile(100.0) == 1000, "p100 must equal max");
  // Tier-0 values are exact: a distribution entirely below 64 ns
  // yields exact percentiles.
  LatencyHistogram small;
  for (std::uint64_t v = 0; v < 64; ++v) {
    for (int k = 0; k < 10; ++k) small.record(v);
  }
  WCQ_CHECK(small.p50() == 31 || small.p50() == 32, "tier0 p50 %llu",
            (unsigned long long)small.p50());
  std::printf("  ok percentiles\n");
}

void test_merge() {
  LatencyHistogram a, b, whole;
  Xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 20);
    whole.record(v);
    (i % 2 ? a : b).record(v);
  }
  a.merge(b);
  WCQ_CHECK(a.count() == whole.count(), "merged count");
  WCQ_CHECK(a.max() == whole.max(), "merged max");
  WCQ_CHECK(a.min() == whole.min(), "merged min");
  WCQ_CHECK(a.p50() == whole.p50(), "merged p50 %llu vs %llu",
            (unsigned long long)a.p50(), (unsigned long long)whole.p50());
  WCQ_CHECK(a.p999() == whole.p999(), "merged p99.9");
  std::printf("  ok merge\n");
}

void test_sampler() {
  LatencyHistogram h;
  harness::OpSampler s(h, 8);
  unsigned armed = 0;
  for (unsigned i = 0; i < 8 * 100; ++i) {
    if (s.arm()) ++armed;
  }
  WCQ_CHECK(armed == 100, "period-8 sampler armed %u of 800", armed);
  // Period rounds up to a power of two.
  harness::OpSampler s2(h, 5);
  armed = 0;
  for (unsigned i = 0; i < 8 * 10; ++i) {
    if (s2.arm()) ++armed;
  }
  WCQ_CHECK(armed == 10, "period-5->8 sampler armed %u of 80", armed);
  std::printf("  ok sampler\n");
}

void test_driver_latency() {
  std::atomic<unsigned> setups{0};
  const auto res = harness::repeat_measure_latency(
      2, 2, 1000, [&] { setups.fetch_add(1); },
      [&](unsigned worker, LatencyHistogram& hist) {
        WCQ_CHECK(worker < 2, "worker id out of range");
        for (int i = 0; i < 250; ++i) hist.record(100 + worker);
      });
  WCQ_CHECK(setups.load() == 2, "setup ran %u times", setups.load());
  // 2 runs x 2 workers x 250 samples merged into one histogram.
  WCQ_CHECK(res.latency.count() == 1000, "merged %llu samples",
            (unsigned long long)res.latency.count());
  WCQ_CHECK(res.latency.max() == 101, "merged max %llu",
            (unsigned long long)res.latency.max());
  WCQ_CHECK(res.mean_mops > 0.0, "throughput not positive");
  std::printf("  ok driver_latency\n");
}

// Open-loop pacing: at a rate this box trivially sustains, the run
// must take at least the scheduled span (the pacer never runs hot) and
// the mean start delay must be a small fraction of the inter-arrival
// gap. Bounds are generous: CI machines (and this box: 1 core) jitter.
void test_openloop_pacing() {
  const std::uint64_t arrivals = 200;
  const double rate = 20'000.0;  // 50 µs fixed gap -> 10 ms run
  std::atomic<std::uint64_t> ops{0};
  const auto res = harness::open_loop_measure(
      1, 1, arrivals, rate, /*poisson=*/false, [] {},
      [&](unsigned) { ops.fetch_add(1, std::memory_order_relaxed); });
  WCQ_CHECK(ops.load() == arrivals, "ran %llu of %llu arrivals",
            (unsigned long long)ops.load(), (unsigned long long)arrivals);
  WCQ_CHECK(res.response.count() == arrivals, "recorded %llu responses",
            (unsigned long long)res.response.count());
  WCQ_CHECK(res.offered_mops > 0.019 && res.offered_mops < 0.021,
            "offered %f Mops", res.offered_mops);
  // Never faster than the schedule allows (+5% measurement slack)...
  WCQ_CHECK(res.achieved_mops <= res.offered_mops * 1.05,
            "achieved %f > offered %f", res.achieved_mops,
            res.offered_mops);
  // ...and the pacer kept up within 2x on a quiet box.
  WCQ_CHECK(res.achieved_mops >= res.offered_mops * 0.5,
            "achieved %f way below offered %f (pacer broken?)",
            res.achieved_mops, res.offered_mops);
  // Start delay bounded by two 50 µs gaps; response includes it. The
  // slack is for sanitizer builds, where every clock read in the
  // pacing loop is 10-20x dearer and the pacer legitimately runs a
  // fraction of a gap late.
  WCQ_CHECK(res.mean_start_delay_ns < 100'000.0, "mean start delay %f ns",
            res.mean_start_delay_ns);
  // Poisson arrivals: same op count, and the realized mean gap should
  // straddle 1/rate (exponential mean = gap) within wide bounds.
  const auto pres = harness::open_loop_measure(
      1, 1, 500, 50'000.0, /*poisson=*/true, [] {}, [](unsigned) {});
  WCQ_CHECK(pres.response.count() == 500, "poisson responses");
  const double dur_s = 500.0 / 1e6 / pres.achieved_mops;
  WCQ_CHECK(dur_s > 0.004 && dur_s < 0.1,
            "poisson 500 arrivals @50k/s took %f s (want ~0.01)", dur_s);
  std::printf("  ok openloop_pacing\n");
}

void test_watchdog() {
  using namespace std::chrono_literals;
  // Healthy workers: ops complete fast, no violations at a 1 s limit.
  {
    harness::StarvationWatchdog dog(2, 1s);
    dog.start();
    for (unsigned t = 0; t < 2; ++t) {
      for (int i = 0; i < 1000; ++i) {
        dog.op_begin(t);
        dog.op_end(t);
      }
    }
    dog.stop();
    const auto rep = dog.report();
    WCQ_CHECK(rep.violations == 0, "healthy run had %llu violations",
              (unsigned long long)rep.violations);
    WCQ_CHECK(rep.total_ops == 2000, "counted %llu ops",
              (unsigned long long)rep.total_ops);
  }
  // A stalled op must be seen: begin, never end, limit 20 ms.
  {
    harness::StarvationWatchdog dog(1, 20ms, /*fatal=*/false);
    dog.op_begin(0);
    dog.start();
    std::this_thread::sleep_for(150ms);
    dog.stop();
    const auto rep = dog.report();
    WCQ_CHECK(rep.violations > 0, "stall not detected");
    WCQ_CHECK(rep.max_stall_ns > 20'000'000ull, "max stall %llu ns",
              (unsigned long long)rep.max_stall_ns);
    WCQ_CHECK(rep.worst_thread == 0, "worst thread %u", rep.worst_thread);
  }
  std::printf("  ok watchdog\n");
}

}  // namespace

int main() {
  test_bucket_mapping();
  test_percentiles();
  test_merge();
  test_sampler();
  test_driver_latency();
  test_openloop_pacing();
  test_watchdog();
  return 0;
}
