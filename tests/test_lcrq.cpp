// LCRQ-specific coverage, beyond the shared battery the ctest lineup
// already runs against it (fifo_lcrq / empty_full_lcrq / mpmc_lcrq).
// These tests force the parts the generic battery touches only by
// luck: ring closure and ring-list crossing (tiny order), retirement
// of drained rings through the shared SMR layer (bounded, non-zero
// reclamation), the reserved all-ones sentinel, and heavy MPMC churn
// over a ring small enough that every few hundred ops closes one.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "queue_test_common.hpp"
#include "wcq/mem.hpp"
#include "wcq/queue.hpp"

namespace {

using namespace wcq;
using harness::LcrqAdapter;
using wcq::test::env_ops;

// Order-4 ring (16 cells), thousands of values: every 16 pushes close
// the ring and link a fresh one, so FIFO order must survive dozens of
// ring crossings, and the drained rings must come back through the
// domain (reclaimed > 0) instead of accumulating.
void test_ring_crossing() {
  const std::uint64_t n = 4096;
  LcrqAdapter q(options{}.max_threads(2).order(4));
  auto h = q.get_handle();

  for (std::uint64_t i = 0; i < n; ++i) {
    WCQ_CHECK(q.try_push(i, h), "push %llu refused", (unsigned long long)i);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = q.try_pop(h);
    WCQ_CHECK(v.has_value(), "pop %llu empty", (unsigned long long)i);
    WCQ_CHECK(*v == i, "FIFO violated across ring crossings: got %llu want %llu",
              (unsigned long long)*v, (unsigned long long)i);
  }
  WCQ_CHECK(!q.try_pop(h).has_value(), "queue should be drained");

  const auto st = q.smr_stats();
  // n values over 16-cell rings retire ~n/16 rings; almost all must
  // already be freed, and what's parked is under the amnesty bound.
  WCQ_CHECK(st.retire_calls >= n / 16 - 1,
            "expected ~%llu ring retirements, saw %llu",
            (unsigned long long)(n / 16), (unsigned long long)st.retire_calls);
  WCQ_CHECK(st.reclaimed_nodes > 0, "no drained ring was ever reclaimed");
  WCQ_CHECK(st.retired_nodes <= 2 * 2 * 2,  // slots x MAX_GARBAGE(2)
            "parked rings exceed the amnesty bound: %llu",
            (unsigned long long)st.retired_nodes);
  std::printf("  ok lcrq_ring_crossing (%llu retires, %llu reclaimed)\n",
              (unsigned long long)st.retire_calls,
              (unsigned long long)st.reclaimed_nodes);
}

// The all-ones pattern is the cell-EMPTY sentinel: try_push must
// refuse it (false) instead of losing it, and the refusal must not
// disturb the queue.
void test_sentinel_refused() {
  LcrqAdapter q(options{}.max_threads(2).order(4));
  auto h = q.get_handle();
  WCQ_CHECK(!q.try_push(~std::uint64_t{0}, h),
            "all-ones sentinel must be refused");
  WCQ_CHECK(q.try_push(1, h), "normal push after refusal failed");
  const auto v = q.try_pop(h);
  WCQ_CHECK(v && *v == 1, "queue disturbed by sentinel refusal");
  WCQ_CHECK(!q.try_pop(h).has_value(), "refused sentinel leaked into queue");
  std::printf("  ok lcrq_sentinel_refused\n");
}

// MPMC over an order-5 ring: producers outrun the ring constantly, so
// closes, fix_state repairs, and concurrent ring retirement all happen
// under contention. No loss, no duplication; afterwards the SMR
// counters must show real bounded reclamation, and queue teardown must
// return every ring to the counting allocator.
void test_mpmc_ring_churn() {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 4;
  const std::uint64_t per_producer = env_ops(20000);
  const std::uint64_t total = per_producer * kProducers;

  const auto mem_before = mem::stats().live_bytes;
  std::uint64_t retire_calls = 0;
  {
    LcrqAdapter q(
        options{}.max_threads(kProducers + kConsumers).order(5));

    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto& s : seen) s.store(0, std::memory_order_relaxed);
    std::atomic<std::uint64_t> consumed{0};

    std::vector<std::thread> threads;
    threads.reserve(kProducers + kConsumers);
    for (unsigned p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          const std::uint64_t v = p * per_producer + i;
          while (!q.try_push(v, h)) std::this_thread::yield();
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        auto h = q.get_handle();
        while (consumed.load(std::memory_order_acquire) < total) {
          const auto v = q.try_pop(h);
          if (!v) {
            std::this_thread::yield();
            continue;
          }
          WCQ_CHECK(*v < total, "out-of-range value %llu",
                    (unsigned long long)*v);
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& t : threads) t.join();

    for (std::uint64_t v = 0; v < total; ++v) {
      const std::uint32_t count = seen[v].load(std::memory_order_relaxed);
      WCQ_CHECK(count == 1, "value %llu seen %u times (lost/duplicated)",
                (unsigned long long)v, count);
    }

    const auto st = q.smr_stats();
    retire_calls = st.retire_calls;
    WCQ_CHECK(st.reclaimed_nodes > 0,
              "MPMC churn reclaimed nothing (%llu retires parked forever?)",
              (unsigned long long)st.retire_calls);
    // Bound: every handle slot can park at most threshold rings, plus
    // one hazard-held ring per slot that scans could not free.
    const std::uint64_t slots = kProducers + kConsumers;
    WCQ_CHECK(st.retired_nodes <= slots * (2 * slots) + slots,
              "parked rings exceed the amnesty bound: %llu",
              (unsigned long long)st.retired_nodes);
  }
  WCQ_CHECK(mem::stats().live_bytes == mem_before,
            "LCRQ leaked %llu bytes of rings",
            (unsigned long long)(mem::stats().live_bytes - mem_before));
  std::printf("  ok lcrq_mpmc_ring_churn (%llu ring retires)\n",
              (unsigned long long)retire_calls);
}

// An order that would overflow the packed [safe|idx] arithmetic must
// be a reportable configuration error, not silent corruption.
void test_order_validation() {
  bool threw = false;
  try {
    LcrqAdapter q(options{}.max_threads(2).order(31));
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  WCQ_CHECK(threw, "order > 30 must throw std::invalid_argument");
  std::printf("  ok lcrq_order_validation\n");
}

}  // namespace

int main() {
  test_ring_crossing();
  test_sentinel_refused();
  test_mpmc_ring_churn();
  test_order_validation();
  return 0;
}
