// Direct coverage of wcq::smr::Domain — the shared reclamation layer
// under MSQ/FAA/LCRQ. Single-threaded checks pin down the protection
// semantics (a hazard or a pinned epoch must block the free, clearing
// it must unblock); the churn test swaps a shared node under
// concurrent hazard-protected readers across waves of recycled slots,
// so a protection bug is a real use-after-free ASan flags, and the
// amnesty bound is asserted from live stats.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "queue_test_common.hpp"
#include "wcq/mem.hpp"
#include "wcq/smr.hpp"

namespace {

using namespace wcq;
using wcq::test::env_ops;

// A retire target with a liveness canary. Deletion scribbles the
// canary before freeing, so a reader holding a stale unprotected
// pointer sees the wrong value even when ASan is not watching.
struct Node {
  static constexpr std::uint64_t kAlive = 0xA11CEA11CEull;
  std::uint64_t canary = kAlive;
  std::uint64_t payload = 0;
};

Node* make_node(std::uint64_t payload) {
  void* raw = mem::alloc(sizeof(Node), alignof(Node));
  Node* n = new (raw) Node();
  n->payload = payload;
  return n;
}

void delete_node(void* p, void*) {
  Node* n = static_cast<Node*>(p);
  n->canary = 0xDEADDEADull;  // poison before the allocator reuses it
  n->~Node();
  mem::free(n, sizeof(Node), alignof(Node));
}

// A hazard published by one slot must hold a node retired by another
// slot across any number of scans; clearing the hazard releases it.
void test_hazard_blocks_free() {
  smr::Domain d(2, /*retire_threshold=*/1);
  Node* n = make_node(7);
  std::atomic<Node*> src{n};

  Node* got = d.protect(0, 0, src);
  WCQ_CHECK(got == n, "protect must return the published pointer");

  src.store(nullptr, std::memory_order_release);  // unlink
  d.retire(1, n, &delete_node, nullptr);          // threshold=1: scans now
  for (int i = 0; i < 8; ++i) d.scan(1);
  WCQ_CHECK(n->canary == Node::kAlive,
            "hazard-protected node was freed under the reader");
  WCQ_CHECK(d.stats().retired_nodes == 1, "node must still be parked");

  d.clear_hazard(0, 0);
  d.scan(1);
  const auto st = d.stats();
  WCQ_CHECK(st.retired_nodes == 0 && st.reclaimed_nodes == 1,
            "cleared hazard must let the scan free the node "
            "(retired=%llu reclaimed=%llu)",
            (unsigned long long)st.retired_nodes,
            (unsigned long long)st.reclaimed_nodes);
  std::printf("  ok smr_hazard_blocks_free\n");
}

// A slot pinned before the retirement must block the free (its pinned
// epoch is not strictly greater than the retire stamp); unpinning
// releases it. A slot that pins *after* the scan's epoch bump must
// not block nodes retired before it pinned.
void test_epoch_pin_blocks_free() {
  smr::Domain d(2, /*retire_threshold=*/100);  // no auto-scan
  Node* n = make_node(9);

  d.pin(0);  // reader enters; could now hold any reachable pointer
  d.retire(1, n, &delete_node, nullptr);
  for (int i = 0; i < 8; ++i) d.scan(1);
  WCQ_CHECK(n->canary == Node::kAlive,
            "node retired inside a pinned region was freed");
  WCQ_CHECK(d.stats().retired_nodes == 1, "node must still be parked");

  d.unpin(0);
  d.scan(1);
  WCQ_CHECK(d.stats().retired_nodes == 0 && d.stats().reclaimed_nodes == 1,
            "unpinned reader must not block the free");

  // Late pin: pinning after the retire + scan epoch bump lands on the
  // young side of the cut and must not hold the next retiree.
  Node* m = make_node(10);
  d.retire(1, m, &delete_node, nullptr);
  d.scan(1);  // bumps the epoch past m's stamp; nobody pinned
  d.pin(0);
  d.scan(1);
  WCQ_CHECK(d.stats().retired_nodes == 0,
            "a reader pinned after the unlink epoch must not block");
  d.unpin(0);
  std::printf("  ok smr_epoch_pin\n");
}

// With nothing protected, the per-slot list must never exceed the
// amnesty threshold: every retire at the bound triggers a scan that
// drains it completely.
void test_retire_threshold_bound() {
  constexpr unsigned kSlots = 4;
  smr::Domain d(kSlots);  // auto threshold = 2 * kSlots
  const unsigned threshold = d.threshold();
  WCQ_CHECK(threshold == 2 * kSlots, "auto threshold must be MAX_GARBAGE=2n");

  for (unsigned i = 0; i < 10 * threshold; ++i) {
    d.retire(0, make_node(i), &delete_node, nullptr);
    WCQ_CHECK(d.stats().retired_nodes < threshold,
              "unprotected garbage exceeded the amnesty bound: %llu >= %u",
              (unsigned long long)d.stats().retired_nodes, threshold);
  }
  const auto st = d.stats();
  WCQ_CHECK(st.reclaimed_nodes + st.retired_nodes == 10 * threshold,
            "retired nodes lost: reclaimed=%llu parked=%llu of %u",
            (unsigned long long)st.reclaimed_nodes,
            (unsigned long long)st.retired_nodes, 10 * threshold);
  WCQ_CHECK(st.scans >= 10, "threshold retires must have forced scans");
  std::printf("  ok smr_threshold_bound (threshold=%u)\n", threshold);
}

// Nodes still parked when the domain dies are freed by its destructor
// (teardown contract: no concurrent access, free unconditionally).
void test_destructor_drains() {
  const auto before = mem::stats().live_bytes;
  {
    smr::Domain d(2, /*retire_threshold=*/1000);  // park, never scan
    for (unsigned i = 0; i < 64; ++i) {
      d.retire(0, make_node(i), &delete_node, nullptr);
    }
    d.pin(1);  // even a still-pinned slot does not leak at teardown
    WCQ_CHECK(d.stats().retired_nodes == 64, "expected 64 parked nodes");
  }
  WCQ_CHECK(mem::stats().live_bytes == before,
            "domain destructor leaked parked nodes");
  std::printf("  ok smr_dtor_drains\n");
}

// The MSQ/LCRQ shape under churn: writers publish a replacement node
// and retire the old one; readers chase the shared pointer through
// protect() and validate the canary. Threads come in waves, each wave
// claiming a fresh strip of recycled slots (quiesce between waves,
// like RegistryHandle teardown does). Any window where a retired node
// frees while a hazard covers it is a use-after-free on the canary
// read — ASan turns it into a hard fault, the canary check catches it
// everywhere else.
void test_concurrent_churn() {
  constexpr unsigned kReaders = 3;
  constexpr unsigned kWriters = 2;
  constexpr unsigned kSlots = kReaders + kWriters;
  constexpr unsigned kWaves = 4;
  const std::uint64_t swaps_per_writer = env_ops(20000);

  const auto mem_before = mem::stats().live_bytes;
  {
    smr::Domain d(kSlots);
    std::atomic<Node*> shared{make_node(0)};

    for (unsigned wave = 0; wave < kWaves; ++wave) {
      std::atomic<bool> stop{false};
      std::vector<std::thread> threads;
      threads.reserve(kSlots);

      for (unsigned r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
          const unsigned slot = r;  // readers own slots [0, kReaders)
          std::uint64_t reads = 0;
          while (!stop.load(std::memory_order_acquire)) {
            Node* n = d.protect(slot, 0, shared);
            // The hazard must make these reads safe even though a
            // writer may have already retired (but not freed) n.
            WCQ_CHECK(n->canary == Node::kAlive,
                      "reader saw freed node (canary %llx) after %llu reads",
                      (unsigned long long)n->canary,
                      (unsigned long long)reads);
            ++reads;
            d.clear_hazard(slot, 0);
          }
        });
      }
      for (unsigned w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
          const unsigned slot = kReaders + w;
          for (std::uint64_t i = 0; i < swaps_per_writer; ++i) {
            Node* fresh = make_node(i);
            Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
            d.retire(slot, old, &delete_node, nullptr);
            // The amnesty bound must hold with live readers too: what
            // the scans cannot free is limited to nodes actually
            // covered by the kReaders hazards.
            WCQ_CHECK(d.stats().retired_nodes <=
                          std::uint64_t{kSlots} * d.threshold() + kReaders,
                      "parked garbage unbounded under churn: %llu",
                      (unsigned long long)d.stats().retired_nodes);
          }
          stop.store(true, std::memory_order_release);
        });
      }
      for (auto& t : threads) t.join();

      // Wave teardown = handle recycling: every slot quiesces, and the
      // next wave inherits clean protection state.
      for (unsigned s = 0; s < kSlots; ++s) d.quiesce(s);
      WCQ_CHECK(d.stats().retired_nodes == 0,
                "quiesced domain still parks %llu nodes",
                (unsigned long long)d.stats().retired_nodes);
    }

    const auto st = d.stats();
    WCQ_CHECK(st.retire_calls == kWaves * kWriters * swaps_per_writer,
              "retire calls lost: %llu of %llu",
              (unsigned long long)st.retire_calls,
              (unsigned long long)(kWaves * kWriters * swaps_per_writer));
    delete_node(shared.load(std::memory_order_relaxed), nullptr);
  }
  WCQ_CHECK(mem::stats().live_bytes == mem_before,
            "churn leaked %llu bytes",
            (unsigned long long)(mem::stats().live_bytes - mem_before));
  std::printf("  ok smr_concurrent_churn (%u waves, %llu swaps/writer)\n",
              kWaves, (unsigned long long)swaps_per_writer);
}

}  // namespace

int main() {
  test_hazard_blocks_free();
  test_epoch_pin_blocks_free();
  test_retire_threshold_bound();
  test_destructor_drains();
  test_concurrent_churn();
  return 0;
}
